package stats

import "math"

// LinearFit is the result of a simple linear regression y ≈ Intercept + Slope·x.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// LinearRegression fits y = a + b·x by least squares.
func LinearRegression(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	b := sxy / sxx
	a := my - b*mx
	var r2 float64
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Slope: b, Intercept: a, R2: r2}
}

// RegressionThroughOrigin fits y = b·x by least squares with no intercept.
// The paper sets its average-comparison threshold δ = 1.9952·σ by regressing
// typical published improvements on the benchmark standard deviation; the
// through-origin form is the natural model for "improvement proportional to
// task noise scale".
func RegressionThroughOrigin(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) == 0 {
		return LinearFit{Slope: math.NaN(), R2: math.NaN()}
	}
	var sxy, sxx, syy float64
	for i := range x {
		sxy += x[i] * y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
	}
	if sxx == 0 {
		return LinearFit{Slope: math.NaN(), R2: math.NaN()}
	}
	b := sxy / sxx
	// R² for through-origin regression: 1 - SSR/Σy².
	ssr := 0.0
	for i := range x {
		e := y[i] - b*x[i]
		ssr += e * e
	}
	var r2 float64
	if syy > 0 {
		r2 = 1 - ssr/syy
	}
	return LinearFit{Slope: b, R2: r2}
}
