package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestNormCDFGolden(t *testing.T) {
	// Values from standard normal tables.
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{2.5758293035489004, 0.995},
		{-3, 0.0013498980316300933},
		{6, 0.9999999990134123},
	}
	for _, c := range cases {
		approxEq(t, "NormCDF", NormCDF(c.z), c.want, 1e-12)
	}
}

func TestNormQuantileGolden(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.05, -1.6448536269514722},
		{0.995, 2.5758293035489004},
		{0.25, -0.6744897501960817},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		approxEq(t, "NormQuantile", NormQuantile(c.p), c.want, 1e-9)
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile endpoints wrong")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Error("NormQuantile out-of-range should be NaN")
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-12 || p > 1-1e-12 {
			return true
		}
		z := NormQuantile(p)
		return math.Abs(NormCDF(z)-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaGolden(t *testing.T) {
	// I_x(a,b) golden values (scipy.special.betainc).
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.3, 0.3},
		{2, 3, 0.5, 0.6875},
		{0.5, 0.5, 0.5, 0.5},
		{5, 2, 0.8, 0.65536},
		{10, 10, 0.5, 0.5},
	}
	for _, c := range cases {
		approxEq(t, "RegIncBeta", RegIncBeta(c.a, c.b, c.x), c.want, 1e-10)
	}
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Error("RegIncBeta endpoints wrong")
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := RegIncBeta(3, 4, x)
		if v < prev {
			t.Fatalf("RegIncBeta not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestRegIncGammaGolden(t *testing.T) {
	// P(a,x) golden values (scipy.special.gammainc).
	cases := []struct{ a, x, want float64 }{
		{1, 1, 1 - math.Exp(-1)},
		{2, 2, 0.5939941502901616},
		{0.5, 0.5, 0.6826894921370859}, // = erf(sqrt(0.5)·...) chi2(1) at 1
		{5, 10, 0.970747311923676},
	}
	for _, c := range cases {
		approxEq(t, "RegIncGammaLower", RegIncGammaLower(c.a, c.x), c.want, 1e-10)
	}
}

func TestLogChoose(t *testing.T) {
	approxEq(t, "LogChoose(5,2)", LogChoose(5, 2), math.Log(10), 1e-12)
	approxEq(t, "LogChoose(10,0)", LogChoose(10, 0), 0, 1e-12)
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Error("LogChoose(3,5) should be -Inf")
	}
}

func TestStudentTGolden(t *testing.T) {
	// scipy.stats.t.cdf golden values.
	cases := []struct {
		nu, t, want float64
	}{
		{1, 0, 0.5},
		{1, 1, 0.75},
		{2, 2, 0.9082482904638631},
		{10, 1.812461122811676, 0.95},
		{30, -2.042272456301238, 0.025},
	}
	for _, c := range cases {
		approxEq(t, "StudentT.CDF", StudentT{Nu: c.nu}.CDF(c.t), c.want, 1e-9)
	}
}

func TestStudentTQuantileInvertsCDF(t *testing.T) {
	dist := StudentT{Nu: 7}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q := dist.Quantile(p)
		approxEq(t, "T quantile/cdf", dist.CDF(q), p, 1e-9)
	}
}

func TestChiSquaredCDF(t *testing.T) {
	// chi2(k=2) is Exp(1/2): CDF(x) = 1-exp(-x/2).
	c := ChiSquared{K: 2}
	for _, x := range []float64{0.5, 1, 2, 5} {
		approxEq(t, "ChiSquared.CDF", c.CDF(x), 1-math.Exp(-x/2), 1e-10)
	}
	if c.CDF(-1) != 0 {
		t.Error("negative chi2 CDF should be 0")
	}
}

func TestBinomialGolden(t *testing.T) {
	b := Binomial{N: 10, P: 0.5}
	approxEq(t, "Binomial.PMF(5)", b.PMF(5), 0.24609375, 1e-12)
	approxEq(t, "Binomial.CDF(5)", b.CDF(5), 0.623046875, 1e-10)
	approxEq(t, "Binomial.Mean", b.Mean(), 5, 0)
	approxEq(t, "Binomial.Std", b.Std(), math.Sqrt(2.5), 1e-12)
	if b.PMF(-1) != 0 || b.PMF(11) != 0 {
		t.Error("out-of-support PMF should be 0")
	}
	if b.CDF(-1) != 0 || b.CDF(10) != 1 {
		t.Error("CDF endpoints wrong")
	}
	// Degenerate p.
	if (Binomial{N: 3, P: 0}).PMF(0) != 1 || (Binomial{N: 3, P: 1}).PMF(3) != 1 {
		t.Error("degenerate binomial PMF wrong")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	b := Binomial{N: 25, P: 0.37}
	sum := 0.0
	for k := 0; k <= 25; k++ {
		sum += b.PMF(k)
	}
	approxEq(t, "ΣPMF", sum, 1, 1e-10)
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	f := func(rawP float64, rawN uint8) bool {
		p := math.Abs(math.Mod(rawP, 1))
		n := 1 + int(rawN%40)
		b := Binomial{N: n, P: p}
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += b.PMF(k)
			if math.Abs(b.CDF(k)-sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccuracyStdModel(t *testing.T) {
	// The Figure 2 model: std of measured accuracy for τ=0.34 error rate
	// (acc 0.66) on n'=277 (Glue-RTE) ≈ 2.85%.
	b := Binomial{N: 277, P: 0.66}
	got := b.AccuracyStd() * 100
	if got < 2.5 || got > 3.2 {
		t.Errorf("RTE-like accuracy std = %v%%, want ≈2.85%%", got)
	}
	// CIFAR10-like: acc 0.91 on 10000 → ≈0.29%.
	b = Binomial{N: 10000, P: 0.91}
	got = b.AccuracyStd() * 100
	if got < 0.25 || got > 0.32 {
		t.Errorf("CIFAR-like accuracy std = %v%%, want ≈0.29%%", got)
	}
}

func TestNormalDistribution(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	approxEq(t, "Normal.CDF(3)", n.CDF(3), 0.5, 1e-12)
	approxEq(t, "Normal.Quantile(0.975)", n.Quantile(0.975), 3+2*1.959963984540054, 1e-8)
	approxEq(t, "Normal.PDF(3)", n.PDF(3), 1/(2*math.Sqrt(2*math.Pi)), 1e-12)
}
