package stats

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

func TestPercentileBootstrapCoversMean(t *testing.T) {
	// Coverage check: a 95% CI for the mean should contain the true mean
	// in roughly 95% of repetitions.
	r := xrand.New(1)
	const reps = 200
	hits := 0
	for rep := 0; rep < reps; rep++ {
		x := make([]float64, 40)
		for i := range x {
			x[i] = r.Normal(10, 2)
		}
		ci := PercentileBootstrap(x, Mean, 500, 0.95, r)
		if ci.Contains(10) {
			hits++
		}
	}
	rate := float64(hits) / reps
	if rate < 0.88 || rate > 0.995 {
		t.Errorf("bootstrap CI coverage = %v, want ≈0.95", rate)
	}
}

func TestPercentileBootstrapOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		ci := PercentileBootstrap(x, Mean, 200, 0.9, r)
		return ci.Lo <= ci.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPairedPercentileBootstrapPAB(t *testing.T) {
	// A dominates B: CI for P(A>B) should sit well above 0.5.
	r := xrand.New(7)
	pairs := make([]Pair, 50)
	for i := range pairs {
		base := r.NormFloat64()
		pairs[i] = Pair{A: base + 1.5, B: base + 0.3*r.NormFloat64()}
	}
	stat := func(p []Pair) float64 {
		a := make([]float64, len(p))
		b := make([]float64, len(p))
		for i, pr := range p {
			a[i], b[i] = pr.A, pr.B
		}
		return PairedPAB(a, b)
	}
	ci := PairedPercentileBootstrap(pairs, stat, 1000, 0.95, r)
	if ci.Lo <= 0.5 {
		t.Errorf("CI.Lo = %v, want > 0.5 for dominated pairs", ci.Lo)
	}
	if ci.Hi > 1 || ci.Lo < 0 {
		t.Errorf("CI out of [0,1]: %+v", ci)
	}
}

func TestNormalCI(t *testing.T) {
	ci := NormalCI(0.8, 0.05, 0.95)
	want := 1.959963984540054 * 0.05
	approxEq(t, "NormalCI lo", ci.Lo, 0.8-want, 1e-9)
	approxEq(t, "NormalCI hi", ci.Hi, 0.8+want, 1e-9)
}

func TestBootstrapStdOfMean(t *testing.T) {
	// The bootstrap std of the mean should approximate σ/√n.
	r := xrand.New(11)
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 3)
	}
	got := BootstrapStd(x, Mean, 2000, r)
	want := 3 / math.Sqrt(float64(n))
	if math.Abs(got-want) > 0.1 {
		t.Errorf("bootstrap std of mean = %v, want ≈ %v", got, want)
	}
}

func TestNoetherSampleSizePaper(t *testing.T) {
	// Appendix C.3: α=β=0.05, γ=0.75 ⇒ N = 29.
	if n := NoetherSampleSize(0.75, 0.05, 0.05); n != 29 {
		t.Errorf("Noether(0.75, .05, .05) = %d, want 29", n)
	}
	// Figure C.1: detecting below γ=0.6 is impractical (N > 100).
	if n := NoetherSampleSize(0.6, 0.05, 0.05); n <= 100 {
		t.Errorf("Noether(0.6) = %d, want > 100", n)
	}
	// γ=0.55 needs > 500 (the paper: "above 500 ... below 0.55").
	if n := NoetherSampleSize(0.55, 0.05, 0.05); n <= 500 {
		t.Errorf("Noether(0.55) = %d, want > 500", n)
	}
}

func TestNoetherMonotone(t *testing.T) {
	prev := math.MaxInt32
	for g := 0.55; g < 1.0; g += 0.05 {
		n := NoetherSampleSize(g, 0.05, 0.05)
		if n > prev {
			t.Fatalf("Noether N not decreasing in γ at %v", g)
		}
		prev = n
	}
	if NoetherSampleSize(0.5, 0.05, 0.05) != math.MaxInt32 {
		t.Error("γ=0.5 should be undetectable")
	}
}

func TestRegressionGolden(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	fit := LinearRegression(x, y)
	approxEq(t, "slope", fit.Slope, 2.01, 0.03)
	approxEq(t, "intercept", fit.Intercept, 0, 0.15)
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestRegressionThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 4}
	y := []float64{2, 4, 8}
	fit := RegressionThroughOrigin(x, y)
	approxEq(t, "slope", fit.Slope, 2, 1e-12)
	approxEq(t, "R2", fit.R2, 1, 1e-12)
}

func TestCorrections(t *testing.T) {
	p := []float64{0.01, 0.04, 0.03, 0.005}
	bonf := BonferroniCorrect(p)
	if bonf[0] != 0.04 || bonf[3] != 0.02 {
		t.Errorf("Bonferroni = %v", bonf)
	}
	holm := HolmCorrect(p)
	// Holm: sorted p = .005, .01, .03, .04 → adj = .02, .03, .06, .06.
	wantHolm := []float64{0.03, 0.06, 0.06, 0.02}
	for i := range wantHolm {
		approxEq(t, "Holm", holm[i], wantHolm[i], 1e-12)
	}
	bh := BenjaminiHochberg(p)
	// BH: sorted .005,.01,.03,.04 → raw adj .02,.02,.04,.04 (monotone).
	wantBH := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range wantBH {
		approxEq(t, "BH", bh[i], wantBH[i], 1e-12)
	}
	// Corrections never reduce p-values.
	for i := range p {
		if bonf[i] < p[i] || holm[i] < p[i] || bh[i] < p[i] {
			t.Error("correction decreased a p-value")
		}
	}
}

func TestGammaBonferroni(t *testing.T) {
	g1 := GammaBonferroni(0.75, 0.05, 1)
	if g1 != 0.75 {
		t.Errorf("m=1 should not change γ: %v", g1)
	}
	g10 := GammaBonferroni(0.75, 0.05, 10)
	if g10 <= 0.75 || g10 > 1 {
		t.Errorf("m=10 γ = %v, want in (0.75, 1]", g10)
	}
	g100 := GammaBonferroni(0.75, 0.05, 100)
	if g100 <= g10 {
		t.Errorf("γ should grow with m: %v vs %v", g100, g10)
	}
}
