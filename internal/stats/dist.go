package stats

import (
	"math"

	"varbench/internal/xrand"
)

// Normal is a Gaussian distribution with mean Mu and standard deviation Sigma.
type Normal struct {
	Mu, Sigma float64
}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	return NormPDF((x-n.Mu)/n.Sigma) / n.Sigma
}

// CDF returns P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	return NormCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns the p-quantile.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*NormQuantile(p)
}

// Sample draws one value using r.
func (n Normal) Sample(r *xrand.Source) float64 {
	return r.Normal(n.Mu, n.Sigma)
}

// Binomial is the distribution of successes in N trials with probability P.
// The paper uses it to model test-set sampling noise of an accuracy measure
// (Figure 2): a pipeline with error rate τ measured on n′ examples follows
// Binomial(n′, τ) when errors are i.i.d.
type Binomial struct {
	N int
	P float64
}

// PMF returns P(X = k).
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	if b.P == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if b.P == 1 {
		if k == b.N {
			return 1
		}
		return 0
	}
	return math.Exp(LogChoose(b.N, k) +
		float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log(1-b.P))
}

// CDF returns P(X ≤ k) via the regularized incomplete beta identity.
func (b Binomial) CDF(k int) float64 {
	switch {
	case k < 0:
		return 0
	case k >= b.N:
		return 1
	}
	return RegIncBeta(float64(b.N-k), float64(k+1), 1-b.P)
}

// Mean returns N·P.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Std returns sqrt(N·P·(1-P)).
func (b Binomial) Std() float64 {
	return math.Sqrt(float64(b.N) * b.P * (1 - b.P))
}

// AccuracyStd returns the standard deviation of the *proportion* of correct
// answers measured on N samples: sqrt(P(1-P)/N). This is the dotted-line
// model of Figure 2.
func (b Binomial) AccuracyStd() float64 {
	return math.Sqrt(b.P * (1 - b.P) / float64(b.N))
}

// Sample draws one count using r.
func (b Binomial) Sample(r *xrand.Source) int { return r.Binomial(b.N, b.P) }

// StudentT is Student's t distribution with Nu degrees of freedom.
type StudentT struct {
	Nu float64
}

// CDF returns P(T ≤ t).
func (s StudentT) CDF(t float64) float64 {
	if s.Nu <= 0 {
		return math.NaN()
	}
	x := s.Nu / (s.Nu + t*t)
	p := 0.5 * RegIncBeta(s.Nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// Quantile returns the p-quantile by bisection on the CDF (monotone,
// well-conditioned; plenty fast for test thresholds).
func (s StudentT) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if s.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ChiSquared is the chi-squared distribution with K degrees of freedom.
type ChiSquared struct {
	K float64
}

// CDF returns P(X ≤ x).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(c.K/2, x/2)
}
