package stats

import (
	"fmt"
	"runtime"
	"testing"

	"varbench/internal/xrand"
)

// The bootstrap benchmarks pin the protocol's hot loop at the paper's
// recommended operating point: K=1000 resamples of n=29 pairs (Noether's N
// for γ=0.75). The serial-legacy case is the historical caller-stream
// engine (now kernel-dispatched through the buffered path); the sharded
// cases must match it within noise at workers=1; the fused-kernel cases are
// the paths the recommended protocol actually runs — bit-identical CIs,
// ≥2x faster and 0 allocs/op in steady state.

func benchPairs(n int) []Pair {
	r := xrand.New(6)
	pairs := make([]Pair, n)
	for i := range pairs {
		base := r.NormFloat64()
		pairs[i] = Pair{A: base + 0.5, B: base + 0.3*r.NormFloat64()}
	}
	return pairs
}

func benchPAB(p []Pair) float64 {
	wins := 0.0
	for _, pr := range p {
		switch {
		case pr.A > pr.B:
			wins++
		case pr.A == pr.B:
			wins += 0.5
		}
	}
	return wins / float64(len(p))
}

func BenchmarkPairedBootstrapK1000(b *testing.B) {
	pairs := benchPairs(29)
	b.Run("serial-legacy", func(b *testing.B) {
		r := xrand.New(9)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			PairedPercentileBootstrap(pairs, benchPAB, 1000, 0.95, r)
		}
	})
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("sharded-workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PairedPercentileBootstrapSharded(pairs, benchPAB, 1000, 0.95, 9, w)
			}
		})
	}
	// The fused path the protocol actually runs: same resamples, same CI,
	// no buffer, no closure, 0 allocs/op in steady state.
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("fused-pab-workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PairedPercentileBootstrapKernel(pairs, PABKernel{}, 1000, 0.95, 9, w)
			}
		})
	}
}

func BenchmarkTwoSampleBootstrapK1000(b *testing.B) {
	r := xrand.New(3)
	a := make([]float64, 29)
	c := make([]float64, 29)
	for i := range a {
		a[i] = r.NormFloat64() + 0.5
		c[i] = r.NormFloat64()
	}
	stat := func(x, y []float64) float64 { return MannWhitney(x, y, TwoTailed).PAB }
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TwoSampleBootstrapSharded(a, c, stat, 1000, 0.95, 9, w)
			}
		})
	}
	// The rank-based Mann-Whitney statistic has no fused kernel (the cases
	// above); the fused two-sample mean difference bounds what the buffered
	// path pays for materializing resamples and closure dispatch.
	b.Run("fused-meandiff-workers-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TwoSampleBootstrapKernel(a, c, TwoSampleMeanDiffKernel{}, 1000, 0.95, 9, 1)
		}
	})
}

// BenchmarkBootstrapKernelsK1000 pins every one-sample kernel against its
// buffered closure counterpart at the recommended operating point (K=1000,
// n=29). Kernel and closure rows are bit-identical in result; the gap is
// pure engine overhead — large for the fused mean (no buffer, no closure
// call), and nil by design for the two-pass variance, which stages its
// draws either way.
func BenchmarkBootstrapKernelsK1000(b *testing.B) {
	x := shardedSample(29, 6)
	cases := []struct {
		name    string
		kern    Kernel
		closure func([]float64) float64
	}{
		{"mean", MeanKernel{}, Mean},
		{"variance", VarianceKernel{}, Variance},
	}
	for _, c := range cases {
		b.Run("kernel-"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PercentileBootstrapKernel(x, c.kern, 1000, 0.95, 11, 1)
			}
		})
		b.Run("closure-"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PercentileBootstrapSharded(x, c.closure, 1000, 0.95, 11, 1)
			}
		})
	}
}
