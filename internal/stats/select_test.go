package stats

import (
	"math"
	"sort"
	"testing"

	"varbench/internal/xrand"
)

// sortedQuantiles is the reference the selection path must match
// bit-for-bit: full sort.Float64s + type-7 interpolation, exactly what
// percentileCI did before the dual quickselect.
func sortedQuantiles(vals []float64, p1, p2 float64) (float64, float64) {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return quantileSorted(s, p1), quantileSorted(s, p2)
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// TestQuantileSelectMatchesSort sweeps random inputs — including heavy
// ties, constant, sorted and reversed slices — across sizes and quantile
// pairs, requiring the selection-based quantiles to equal the sorted
// reference exactly.
func TestQuantileSelectMatchesSort(t *testing.T) {
	r := xrand.New(55)
	levels := []float64{0.5, 0.8, 0.9, 0.95, 0.99}
	gen := map[string]func(n int) []float64{
		"normal": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			return x
		},
		"tied": func(n int) []float64 {
			// Draws from a handful of values: long runs of equal elements
			// stress the partition's equal-to-pivot handling.
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(r.Intn(4))
			}
			return x
		},
		"constant": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = 3.25
			}
			return x
		},
		"ascending": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(i)
			}
			return x
		},
		"descending": func(n int) []float64 {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64(n - i)
			}
			return x
		},
	}
	for name, g := range gen {
		for _, n := range []int{1, 2, 3, 5, 13, 64, 100, 1000} {
			for _, level := range levels {
				p1, p2 := (1-level)/2, 1-(1-level)/2
				vals := g(n)
				wantLo, wantHi := sortedQuantiles(vals, p1, p2)
				gotLo, gotHi := quantiles2Select(vals, p1, p2)
				if !bitsEqual(gotLo, wantLo) || !bitsEqual(gotHi, wantHi) {
					t.Fatalf("%s n=%d level=%v: select (%v, %v) != sort (%v, %v)",
						name, n, level, gotLo, gotHi, wantLo, wantHi)
				}
			}
		}
	}
}

// TestQuantileSelectExtremePs covers the clamp arms (p ≤ 0 → min,
// p ≥ 1 → max) and exact-index quantiles with no interpolation fraction.
func TestQuantileSelectExtremePs(t *testing.T) {
	r := xrand.New(66)
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = r.NormFloat64()
	}
	for _, ps := range [][2]float64{{0, 1}, {-0.5, 1.5}, {0.25, 0.75}, {0.5, 0.5}} {
		wantLo, wantHi := sortedQuantiles(vals, ps[0], ps[1])
		gotLo, gotHi := quantiles2Select(append([]float64(nil), vals...), ps[0], ps[1])
		if !bitsEqual(gotLo, wantLo) || !bitsEqual(gotHi, wantHi) {
			t.Fatalf("ps=%v: select (%v, %v) != sort (%v, %v)", ps, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

// TestQuantileSelectNaNs mirrors sort.Float64s, which orders NaNs first:
// with m NaNs present the low quantile can be NaN while the high one reads
// from the finite tail — whatever the sorted reference does, selection must
// do too.
func TestQuantileSelectNaNs(t *testing.T) {
	r := xrand.New(77)
	for _, nNaN := range []int{1, 3, 50, 101} {
		vals := make([]float64, 101)
		for i := range vals {
			if i < nNaN {
				vals[i] = math.NaN()
			} else {
				vals[i] = r.NormFloat64()
			}
		}
		// Scatter the NaNs.
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		wantLo, wantHi := sortedQuantiles(vals, 0.025, 0.975)
		gotLo, gotHi := quantiles2Select(vals, 0.025, 0.975)
		if !bitsEqual(gotLo, wantLo) || !bitsEqual(gotHi, wantHi) {
			t.Fatalf("nNaN=%d: select (%v, %v) != sort (%v, %v)", nNaN, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

// TestNthElementPartitions checks the partial-order postcondition nth
// element promises, which quantileSelect's repeated calls rely on.
func TestNthElementPartitions(t *testing.T) {
	r := xrand.New(88)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(r.Intn(10))
		}
		k := r.Intn(n)
		ref := append([]float64(nil), s...)
		sort.Float64s(ref)
		if got := nthElement(s, k); got != ref[k] {
			t.Fatalf("trial %d: nthElement(k=%d) = %v, want %v", trial, k, got, ref[k])
		}
		for i := 0; i < k; i++ {
			if s[i] > s[k] {
				t.Fatalf("trial %d: s[%d]=%v > s[k=%d]=%v", trial, i, s[i], k, s[k])
			}
		}
		for i := k + 1; i < n; i++ {
			if s[i] < s[k] {
				t.Fatalf("trial %d: s[%d]=%v < s[k=%d]=%v", trial, i, s[i], k, s[k])
			}
		}
	}
}
