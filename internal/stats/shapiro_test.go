package stats

import (
	"math"
	"testing"

	"varbench/internal/xrand"
)

func TestShapiroWilkNormalSample(t *testing.T) {
	r := xrand.New(17)
	x := make([]float64, 100)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	w, p, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if w < 0.97 {
		t.Errorf("W = %v for a normal sample, want > 0.97", w)
	}
	if p < 0.05 {
		t.Errorf("p = %v for a normal sample, should not reject", p)
	}
}

func TestShapiroWilkRejectsExponential(t *testing.T) {
	r := xrand.New(19)
	x := make([]float64, 100)
	for i := range x {
		x[i] = -math.Log(1 - r.Float64()) // Exp(1)
	}
	w, p, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.001 {
		t.Errorf("p = %v for exponential sample, should strongly reject (W=%v)", p, w)
	}
}

func TestShapiroWilkRejectsUniform(t *testing.T) {
	r := xrand.New(23)
	x := make([]float64, 500)
	for i := range x {
		x[i] = r.Float64()
	}
	_, p, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("p = %v for uniform n=500, should reject", p)
	}
}

func TestShapiroWilkCalibration(t *testing.T) {
	// Under H0 (normal data) the rejection rate at level 0.05 should be
	// close to 5%. This validates the whole p-value transformation chain.
	r := xrand.New(29)
	const trials = 400
	for _, n := range []int{10, 30, 80} {
		rejects := 0
		for trial := 0; trial < trials; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			_, p, err := ShapiroWilk(x)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0.05 {
				rejects++
			}
		}
		rate := float64(rejects) / trials
		if rate > 0.11 || rate < 0.005 {
			t.Errorf("n=%d: rejection rate %v under H0, want ≈0.05", n, rate)
		}
	}
}

func TestShapiroWilkPowerGrowsWithN(t *testing.T) {
	// For a fixed skewed alternative, p should (stochastically) fall with n.
	r := xrand.New(31)
	gen := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			v := r.NormFloat64()
			x[i] = v * v // chi-squared(1): very skewed
		}
		return x
	}
	_, pSmall, err := ShapiroWilk(gen(12))
	if err != nil {
		t.Fatal(err)
	}
	_, pLarge, err := ShapiroWilk(gen(300))
	if err != nil {
		t.Fatal(err)
	}
	if pLarge > pSmall && pLarge > 1e-6 {
		t.Errorf("power did not grow: p(12)=%v p(300)=%v", pSmall, pLarge)
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	// n = 3 uses the closed-form p.
	w, p, err := ShapiroWilk([]float64{1, 2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > 1 || p < 0 || p > 1 {
		t.Errorf("n=3: w=%v p=%v out of range", w, p)
	}
	// Perfectly symmetric triple has W ≈ 1.
	w, _, err = ShapiroWilk([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if w < 0.99 {
		t.Errorf("symmetric triple W=%v, want ≈1", w)
	}
	// n in 4..11 branch.
	for n := 4; n <= 11; n++ {
		r := xrand.New(uint64(n))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		w, p, err := ShapiroWilk(x)
		if err != nil {
			t.Fatal(err)
		}
		if w <= 0 || w > 1 || p < 0 || p > 1 {
			t.Errorf("n=%d: w=%v p=%v out of range", n, w, p)
		}
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Error("n=2 should error")
	}
	if _, _, err := ShapiroWilk(make([]float64, 5001)); err == nil {
		t.Error("n=5001 should error")
	}
	if _, _, err := ShapiroWilk([]float64{3, 3, 3, 3}); err == nil {
		t.Error("constant sample should error")
	}
}

func TestShapiroWilkWNearOneForNormal(t *testing.T) {
	// W approaches 1 from below for larger normal samples.
	r := xrand.New(37)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = r.Normal(5, 3)
	}
	w, _, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if w < 0.995 {
		t.Errorf("W = %v for n=1000 normal, want > 0.995", w)
	}
}
