package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrShapiroSampleSize is returned for samples outside [3, 5000].
var ErrShapiroSampleSize = errors.New("stats: Shapiro-Wilk requires 3 ≤ n ≤ 5000")

// ShapiroWilk tests the null hypothesis that x was drawn from a normal
// distribution, following Royston's 1995 algorithm (AS R94), the same
// procedure scipy uses and the paper applies to its performance
// distributions (Figure G.3). It returns the W statistic and an approximate
// p-value (upper tail of the transformed statistic).
func ShapiroWilk(x []float64) (w, pvalue float64, err error) {
	n := len(x)
	if n < 3 || n > 5000 {
		return math.NaN(), math.NaN(), ErrShapiroSampleSize
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if s[0] == s[n-1] {
		return math.NaN(), math.NaN(), errors.New("stats: Shapiro-Wilk on constant sample")
	}

	// Expected values of normal order statistics (Blom approximation).
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		m[i] = NormQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
	}
	mss := 0.0
	for _, v := range m {
		mss += v * v
	}

	// Weights. Royston's polynomial corrections for the two extreme weights.
	a := make([]float64, n)
	u := 1 / math.Sqrt(float64(n))
	rsqrt := math.Sqrt(mss)
	if n > 5 {
		an := -2.706056*pow5(u) + 4.434685*pow4(u) - 2.071190*pow3(u) -
			0.147981*u*u + 0.221157*u + m[n-1]/rsqrt
		an1 := -3.582633*pow5(u) + 5.682633*pow4(u) - 1.752461*pow3(u) -
			0.293762*u*u + 0.042981*u + m[n-2]/rsqrt
		phi := (mss - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
			(1 - 2*an*an - 2*an1*an1)
		a[n-1] = an
		a[n-2] = an1
		a[0] = -an
		a[1] = -an1
		sphi := math.Sqrt(phi)
		for i := 2; i < n-2; i++ {
			a[i] = m[i] / sphi
		}
	} else {
		an := -2.706056*pow5(u) + 4.434685*pow4(u) - 2.071190*pow3(u) -
			0.147981*u*u + 0.221157*u + m[n-1]/rsqrt
		a[n-1] = an
		a[0] = -an
		if n == 3 {
			a[0] = -math.Sqrt(0.5)
			a[2] = math.Sqrt(0.5)
			a[1] = 0
		} else {
			phi := (mss - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
			sphi := math.Sqrt(phi)
			for i := 1; i < n-1; i++ {
				a[i] = m[i] / sphi
			}
		}
	}

	// W statistic.
	mean := Mean(s)
	num, den := 0.0, 0.0
	for i, v := range s {
		num += a[i] * v
		d := v - mean
		den += d * d
	}
	w = num * num / den
	if w > 1 {
		w = 1
	}

	// P-value via Royston's normalizing transformations.
	switch {
	case n == 3:
		const pi6 = 6 / math.Pi
		const stqr = math.Pi / 3 // asin(sqrt(3/4))
		p := pi6 * (math.Asin(math.Sqrt(w)) - stqr)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return w, p, nil
	case n <= 11:
		nf := float64(n)
		gamma := -2.273 + 0.459*nf
		lw := -math.Log(gamma - math.Log(1-w))
		mu := 0.5440 - 0.39978*nf + 0.025054*nf*nf - 0.0006714*nf*nf*nf
		sigma := math.Exp(1.3822 - 0.77857*nf + 0.062767*nf*nf - 0.0020322*nf*nf*nf)
		z := (lw - mu) / sigma
		return w, 1 - NormCDF(z), nil
	default:
		lw := math.Log(1 - w)
		ln := math.Log(float64(n))
		mu := -1.5861 - 0.31082*ln - 0.083751*ln*ln + 0.0038915*ln*ln*ln
		sigma := math.Exp(-0.4803 - 0.082676*ln + 0.0030302*ln*ln)
		z := (lw - mu) / sigma
		return w, 1 - NormCDF(z), nil
	}
}

func pow3(x float64) float64 { return x * x * x }
func pow4(x float64) float64 { return x * x * x * x }
func pow5(x float64) float64 { return x * x * x * x * x }
