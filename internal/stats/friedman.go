package stats

import (
	"fmt"
	"math"
)

// Friedman tests whether k algorithms have equal performance across n
// datasets (Demšar 2006, the Section 6 recommendation for multi-algorithm
// comparisons). scores[d][a] is the performance of algorithm a on dataset d
// (higher is better). It returns the chi-squared statistic, its p-value, and
// the average rank of each algorithm (rank 1 = best).
type FriedmanResult struct {
	ChiSq    float64
	PValue   float64
	AvgRanks []float64
	K, N     int
}

// Friedman runs the test. Requires at least 2 algorithms and 2 datasets;
// Demšar notes it is unreliable below ~10 datasets and 5 algorithms, which
// callers should keep in mind (the paper's Section 6 discussion).
func Friedman(scores [][]float64) (FriedmanResult, error) {
	n := len(scores)
	if n < 2 {
		return FriedmanResult{}, fmt.Errorf("stats: Friedman needs ≥ 2 datasets")
	}
	k := len(scores[0])
	if k < 2 {
		return FriedmanResult{}, fmt.Errorf("stats: Friedman needs ≥ 2 algorithms")
	}
	avg := make([]float64, k)
	for d, row := range scores {
		if len(row) != k {
			return FriedmanResult{}, fmt.Errorf("stats: dataset %d has %d scores, want %d", d, len(row), k)
		}
		// Rank within the dataset: higher score = better = lower rank
		// number, with midranks for ties. Ranks() ranks ascending, so rank
		// on negated scores.
		neg := make([]float64, k)
		for a, v := range row {
			neg[a] = -v
		}
		ranks := Ranks(neg)
		for a, r := range ranks {
			avg[a] += r
		}
	}
	for a := range avg {
		avg[a] /= float64(n)
	}
	// χ²_F = 12n/(k(k+1)) · (Σ R_a² − k(k+1)²/4).
	sumSq := 0.0
	for _, r := range avg {
		sumSq += r * r
	}
	chi := 12 * float64(n) / (float64(k) * float64(k+1)) *
		(sumSq - float64(k)*float64(k+1)*float64(k+1)/4)
	p := 1 - ChiSquared{K: float64(k - 1)}.CDF(chi)
	return FriedmanResult{ChiSq: chi, PValue: p, AvgRanks: avg, K: k, N: n}, nil
}

// NemenyiCD returns the critical difference of average ranks for the
// Nemenyi post-hoc test at significance alpha (0.05 or 0.10): two
// algorithms differ when their average ranks differ by at least
// q_α·sqrt(k(k+1)/(6n)). q values are the Studentized-range-based constants
// tabulated by Demšar (2006) for k ≤ 10.
func NemenyiCD(k, n int, alpha float64) (float64, error) {
	if k < 2 || k > 10 {
		return 0, fmt.Errorf("stats: Nemenyi table covers 2 ≤ k ≤ 10, got %d", k)
	}
	var q []float64
	switch {
	case math.Abs(alpha-0.05) < 1e-9:
		q = []float64{0, 0, 1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164}
	case math.Abs(alpha-0.10) < 1e-9:
		q = []float64{0, 0, 1.645, 2.052, 2.291, 2.459, 2.589, 2.693, 2.780, 2.855, 2.920}
	default:
		return 0, fmt.Errorf("stats: Nemenyi table has alpha 0.05 and 0.10 only")
	}
	return q[k] * math.Sqrt(float64(k)*float64(k+1)/(6*float64(n))), nil
}

// NemenyiPairs lists the algorithm pairs whose average ranks differ by at
// least the critical difference.
func NemenyiPairs(res FriedmanResult, alpha float64) ([][2]int, error) {
	cd, err := NemenyiCD(res.K, res.N, alpha)
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for a := 0; a < res.K; a++ {
		for b := a + 1; b < res.K; b++ {
			if math.Abs(res.AvgRanks[a]-res.AvgRanks[b]) >= cd {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out, nil
}
