package stats

import (
	"sort"
	"strconv"
	"sync"

	"varbench/internal/xrand"
)

// The sharded bootstrap: the K resamples are partitioned into shards whose
// boundaries and RNG streams depend only on (seed, K) — never on the worker
// count or on scheduling — so the resampled statistics, and therefore the
// confidence interval, are bit-identical at any parallelism. Each worker
// reuses one resample buffer across all the shards it processes, so the
// allocation cost is O(workers·n), not O(K·n).

// maxBootstrapShards bounds the shard count. 64 shards keep the work queue
// balanced for any plausible worker count while each shard still amortizes
// its RNG setup over many resamples at the recommended K=1000.
const maxBootstrapShards = 64

// BootstrapShards returns the number of shards the sharded bootstrap splits
// k resamples into. It is a pure function of k, which is what pins shard
// boundaries independently of the worker count.
func BootstrapShards(k int) int {
	if k < maxBootstrapShards {
		return k
	}
	return maxBootstrapShards
}

// bootstrapShard is one unit of sharded resampling work: fill vals[Lo:Hi)
// drawing only from R.
type bootstrapShard struct {
	Lo, Hi int
	R      *xrand.Source
}

// forEachShard partitions k resamples into BootstrapShards(k) shards, each
// with its own RNG stream derived from (seed, shard index), and feeds them
// to `workers` concurrent copies of worker (one synchronous call when
// workers ≤ 1). Shards cover disjoint index ranges, so workers writing
// vals[Lo:Hi) never contend.
func forEachShard(k int, seed uint64, workers int, worker func(<-chan bootstrapShard)) {
	nShards := BootstrapShards(k)
	root := xrand.New(seed)
	ch := make(chan bootstrapShard, nShards)
	for s := 0; s < nShards; s++ {
		ch <- bootstrapShard{
			Lo: s * k / nShards,
			Hi: (s + 1) * k / nShards,
			R:  root.Split("bootstrap/shard/" + strconv.Itoa(s)),
		}
	}
	close(ch)
	if workers > nShards {
		workers = nShards
	}
	if workers <= 1 {
		worker(ch)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(ch)
		}()
	}
	wg.Wait()
}

// percentileCI sorts the resampled statistics and reads off the two-sided
// percentile interval.
func percentileCI(vals []float64, level float64) CI {
	sort.Float64s(vals)
	alpha := 1 - level
	return CI{
		Lo:    quantileSorted(vals, alpha/2),
		Hi:    quantileSorted(vals, 1-alpha/2),
		Level: level,
	}
}

// PercentileBootstrapSharded is PercentileBootstrap with the resampling
// sharded across `workers` goroutines. Results depend only on (x, statistic,
// k, level, seed): any worker count, including 1, produces bit-identical
// intervals. statistic must be safe for concurrent calls on distinct
// buffers (a pure function of its argument, as every statistic here is).
func PercentileBootstrapSharded(x []float64, statistic func([]float64) float64,
	k int, level float64, seed uint64, workers int) CI {
	n := len(x)
	vals := make([]float64, k)
	forEachShard(k, seed, workers, func(shards <-chan bootstrapShard) {
		buf := make([]float64, n)
		for sh := range shards {
			for b := sh.Lo; b < sh.Hi; b++ {
				for i := range buf {
					buf[i] = x[sh.R.Intn(n)]
				}
				vals[b] = statistic(buf)
			}
		}
	})
	return percentileCI(vals, level)
}

// PairedPercentileBootstrapSharded is PairedPercentileBootstrap with the
// resampling sharded across `workers` goroutines; see
// PercentileBootstrapSharded for the determinism contract.
func PairedPercentileBootstrapSharded(pairs []Pair, statistic func([]Pair) float64,
	k int, level float64, seed uint64, workers int) CI {
	n := len(pairs)
	vals := make([]float64, k)
	forEachShard(k, seed, workers, func(shards <-chan bootstrapShard) {
		buf := make([]Pair, n)
		for sh := range shards {
			for b := sh.Lo; b < sh.Hi; b++ {
				for i := range buf {
					buf[i] = pairs[sh.R.Intn(n)]
				}
				vals[b] = statistic(buf)
			}
		}
	})
	return percentileCI(vals, level)
}

// TwoSampleBootstrapSharded bootstraps two unpaired samples independently —
// each resample redraws both a and b with replacement — and returns the
// sharded percentile CI of statistic(a*, b*). This is the engine behind the
// unpaired (Mann-Whitney) variant of the recommended test.
func TwoSampleBootstrapSharded(a, b []float64, statistic func(a, b []float64) float64,
	k int, level float64, seed uint64, workers int) CI {
	vals := make([]float64, k)
	forEachShard(k, seed, workers, func(shards <-chan bootstrapShard) {
		bufA := make([]float64, len(a))
		bufB := make([]float64, len(b))
		for sh := range shards {
			for i := sh.Lo; i < sh.Hi; i++ {
				for j := range bufA {
					bufA[j] = a[sh.R.Intn(len(a))]
				}
				for j := range bufB {
					bufB[j] = b[sh.R.Intn(len(b))]
				}
				vals[i] = statistic(bufA, bufB)
			}
		}
	})
	return percentileCI(vals, level)
}
