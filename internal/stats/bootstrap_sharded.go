package stats

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"varbench/internal/xrand"
)

// The sharded bootstrap: the K resamples are partitioned into shards whose
// boundaries and RNG streams depend only on (seed, K) — never on the worker
// count or on scheduling — so the resampled statistics, and therefore the
// confidence interval, are bit-identical at any parallelism. Statistics
// dispatch through the kernel layer (kernel.go): the protocol's own
// statistics run fused — accumulating straight from sampled indices with no
// resample buffer — while arbitrary closures keep the buffered path via the
// StatFunc adapters. All scratch (the resampled-statistic vector, the shard
// descriptors, buffered-path buffers) cycles through pools, so the engine
// allocates nothing in steady state.

// maxBootstrapShards bounds the shard count. 64 shards keep the work queue
// balanced for any plausible worker count while each shard still amortizes
// its RNG setup over many resamples at the recommended K=1000.
const maxBootstrapShards = 64

// BootstrapShards returns the number of shards the sharded bootstrap splits
// k resamples into. It is a pure function of k, which is what pins shard
// boundaries independently of the worker count.
func BootstrapShards(k int) int {
	if k < maxBootstrapShards {
		return k
	}
	return maxBootstrapShards
}

// bootstrapShard is one unit of sharded resampling work: fill vals[Lo:Hi)
// drawing only from R.
type bootstrapShard struct {
	Lo, Hi int
	R      xrand.Source
}

// bootstrapShardPrefix labels the per-shard child streams. The label bytes
// must stay exactly "bootstrap/shard/<index>": they pin the historical
// stream derivation.
const bootstrapShardPrefix = "bootstrap/shard/"

var shardPool sync.Pool // *[]bootstrapShard

// getShards returns a pooled slice of n shards covering [0, k) with their
// (seed, index)-derived RNG streams seeded in place.
func getShards(k int, seed uint64) *[]bootstrapShard {
	n := BootstrapShards(k)
	p, _ := shardPool.Get().(*[]bootstrapShard)
	if p == nil || cap(*p) < n {
		s := make([]bootstrapShard, n)
		p = &s
	}
	*p = (*p)[:n]
	var root xrand.Source
	root.Seed(seed)
	var lbl [len(bootstrapShardPrefix) + 20]byte
	shards := *p
	for s := range shards {
		b := append(lbl[:0], bootstrapShardPrefix...)
		b = strconv.AppendInt(b, int64(s), 10)
		shards[s].Lo = s * k / n
		shards[s].Hi = (s + 1) * k / n
		shards[s].R.Seed(root.SplitSeedBytes(b))
	}
	return p
}

// resampler is the engine-facing half of the kernel interfaces, generic
// over the sample shape (one-sample, paired, two-sample).
type resampler[S any] interface {
	ResampleInto(out []float64, sample S, r *xrand.Source)
}

// twoSamples bundles two unpaired samples into one engine sample value.
type twoSamples struct{ a, b []float64 }

type twoSampleAdapter struct{ TwoSampleKernel }

func (t twoSampleAdapter) ResampleInto(out []float64, s twoSamples, r *xrand.Source) {
	t.TwoSampleKernel.ResampleInto(out, s.a, s.b, r)
}

// shardedVals fills vals with len(vals) resampled statistics of kern over
// sample, sharded across `workers` goroutines. The shard streams depend
// only on (seed, len(vals)) and shards write disjoint ranges, so the
// contents of vals are bit-identical at any worker count. Generic over the
// kernel type so that concrete adapter structs are not boxed into an
// interface (which would allocate on every call).
func shardedVals[S any, K resampler[S]](vals []float64, sample S, kern K, seed uint64, workers int) {
	sp := getShards(len(vals), seed)
	shards := *sp
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for i := range shards {
			sh := &shards[i]
			kern.ResampleInto(vals[sh.Lo:sh.Hi], sample, &sh.R)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					sh := &shards[i]
					kern.ResampleInto(vals[sh.Lo:sh.Hi], sample, &sh.R)
				}
			}()
		}
		wg.Wait()
	}
	shardPool.Put(sp)
}

// badBootstrap reports whether a bootstrap request is degenerate: nothing
// to resample, no resamples, or a confidence level outside (0, 1). The
// entry points answer such requests with a NaN CI (see nanCI) instead of
// panicking on empty or unsorted-garbage quantile input.
func badBootstrap(sampleLen, k int, level float64) bool {
	return sampleLen == 0 || k <= 0 || math.IsNaN(level) || level <= 0 || level >= 1
}

// nanCI is the documented degenerate-input answer: both endpoints NaN, the
// requested level echoed back. It consumes no randomness.
func nanCI(level float64) CI {
	return CI{Lo: math.NaN(), Hi: math.NaN(), Level: level}
}

// percentileCI reads the two-sided percentile interval off the resampled
// statistics via selection (O(K) expected, see select.go) instead of a full
// sort, reordering vals in place.
func percentileCI(vals []float64, level float64) CI {
	alpha := 1 - level
	lo, hi := quantiles2Select(vals, alpha/2, 1-alpha/2)
	return CI{Lo: lo, Hi: hi, Level: level}
}

// bootstrapCI is the shared sharded engine behind the kernel entry points.
func bootstrapCI[S any, K resampler[S]](sample S, sampleLen int, kern K, k int, level float64, seed uint64, workers int) CI {
	if badBootstrap(sampleLen, k, level) {
		return nanCI(level)
	}
	vp := getFloats(k)
	vals := *vp
	shardedVals(vals, sample, kern, seed, workers)
	ci := percentileCI(vals, level)
	putFloats(vp)
	return ci
}

// PercentileBootstrapKernel computes the sharded percentile-bootstrap CI of
// a one-sample kernel statistic: K resamples with replacement, interval
// given by the α/2 and 1-α/2 empirical quantiles of the resampled
// statistics. Results depend only on (x, kern, k, level, seed): any worker
// count, including 1, produces bit-identical intervals. Degenerate input
// (empty x, k ≤ 0, level outside (0,1)) yields a NaN CI.
func PercentileBootstrapKernel(x []float64, kern Kernel, k int, level float64, seed uint64, workers int) CI {
	return bootstrapCI[[]float64, Kernel](x, len(x), kern, k, level, seed, workers)
}

// PairedPercentileBootstrapKernel is PercentileBootstrapKernel for paired
// kernels: whole pairs are resampled jointly, preserving the pairing
// (Appendix C.5's procedure for P(A>B)).
func PairedPercentileBootstrapKernel(pairs []Pair, kern PairedKernel, k int, level float64, seed uint64, workers int) CI {
	return bootstrapCI[[]Pair, PairedKernel](pairs, len(pairs), kern, k, level, seed, workers)
}

// TwoSampleBootstrapKernel is PercentileBootstrapKernel for two-sample
// kernels: each resample redraws both a and b independently with
// replacement. This is the engine behind the unpaired (Mann-Whitney)
// variant of the recommended test.
func TwoSampleBootstrapKernel(a, b []float64, kern TwoSampleKernel, k int, level float64, seed uint64, workers int) CI {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	return bootstrapCI[twoSamples, twoSampleAdapter](twoSamples{a, b}, n, twoSampleAdapter{kern}, k, level, seed, workers)
}

// PercentileBootstrapSharded is the closure form of
// PercentileBootstrapKernel: statistic must be safe for concurrent calls on
// distinct buffers (a pure function of its argument, as every statistic
// here is). Statistics with a fused kernel should use the kernel entry
// point directly; closures take the buffered fallback path.
func PercentileBootstrapSharded(x []float64, statistic func([]float64) float64,
	k int, level float64, seed uint64, workers int) CI {
	return PercentileBootstrapKernel(x, StatFunc(statistic), k, level, seed, workers)
}

// PairedPercentileBootstrapSharded is the closure form of
// PairedPercentileBootstrapKernel; see PercentileBootstrapSharded for the
// concurrency contract.
func PairedPercentileBootstrapSharded(pairs []Pair, statistic func([]Pair) float64,
	k int, level float64, seed uint64, workers int) CI {
	return PairedPercentileBootstrapKernel(pairs, PairStatFunc(statistic), k, level, seed, workers)
}

// TwoSampleBootstrapSharded is the closure form of TwoSampleBootstrapKernel.
func TwoSampleBootstrapSharded(a, b []float64, statistic func(a, b []float64) float64,
	k int, level float64, seed uint64, workers int) CI {
	return TwoSampleBootstrapKernel(a, b, TwoSampleStatFunc(statistic), k, level, seed, workers)
}
