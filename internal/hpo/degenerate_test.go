package hpo

import (
	"math"
	"testing"

	"varbench/internal/xrand"
)

func TestDegenerateBudgetGrids(t *testing.T) {
	// budget < 2^d: a single centred point; noisy variant stays in bounds
	// and varies across seeds.
	space := Space{
		{Name: "a", Lo: 0, Hi: 1},
		{Name: "b", Lo: 1e-4, Hi: 1, Log: true},
		{Name: "c", Lo: -1, Hi: 1},
	}
	h, err := GridSearch{}.Optimize(sphere3, space, 6, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 1 {
		t.Fatalf("degenerate grid evaluated %d points, want 1", len(h))
	}
	if math.Abs(h[0].Params["a"]-0.5) > 1e-12 {
		t.Errorf("grid centre a = %v, want 0.5", h[0].Params["a"])
	}
	if math.Abs(h[0].Params["b"]-0.01) > 1e-9 { // geometric midpoint of [1e-4, 1]
		t.Errorf("grid centre b = %v, want 0.01", h[0].Params["b"])
	}
	n1, err := NoisyGrid{}.Optimize(sphere3, space, 6, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NoisyGrid{}.Optimize(sphere3, space, 6, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range [][]Trial{n1, n2} {
		for _, d := range space {
			v := h[0].Params[d.Name]
			if math.IsNaN(v) || v < d.Lo || v > d.Hi {
				t.Fatalf("noisy degenerate point out of bounds: %s=%v", d.Name, v)
			}
		}
	}
	if n1[0].Params["a"] == n2[0].Params["a"] {
		t.Error("noisy degenerate grids identical across seeds")
	}
}

func sphere3(p Params) float64 {
	return p["a"]*p["a"] + p["b"]*p["b"] + p["c"]*p["c"]
}
