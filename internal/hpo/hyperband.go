package hpo

import (
	"math"

	"varbench/internal/xrand"
)

// Hyperband (Li et al. 2018) hedges successive halving's aggressiveness by
// running several SHA brackets that trade the number of configurations
// against their starting budget. Bracket s starts
// n = ⌈(s_max+1)/(s+1)·η^s⌉ configurations at budget R·η^{−s}, for
// s = s_max … 0 with s_max = ⌊log_η R⌋.
type Hyperband struct {
	Eta       int // elimination factor (default 3)
	MaxBudget int // R: the full training budget per configuration (default 27)
}

// Name identifies the optimizer.
func (Hyperband) Name() string { return "hyperband" }

func (h Hyperband) defaults() Hyperband {
	if h.Eta < 2 {
		h.Eta = 3
	}
	if h.MaxBudget < 1 {
		h.MaxBudget = 27
	}
	return h
}

// Bracket is one SHA run within Hyperband.
type Bracket struct {
	S       int
	Configs int
	MinR    int
	History SHAHistory
}

// HyperbandResult aggregates all brackets.
type HyperbandResult struct {
	Brackets []Bracket
}

// Best returns the best final-rung trial across brackets.
func (r HyperbandResult) Best() (Trial, bool) {
	var best Trial
	found := false
	for _, b := range r.Brackets {
		if t, ok := b.History.Best(); ok && (!found || t.Value < best.Value) {
			best = t
			found = true
		}
	}
	return best, found
}

// TotalBudget sums the (restart-model) budget of all brackets.
func (r HyperbandResult) TotalBudget() int {
	total := 0
	for _, b := range r.Brackets {
		total += b.History.TotalBudget()
	}
	return total
}

// Optimize runs the full bracket schedule.
func (h Hyperband) Optimize(obj BudgetedObjective, space Space, r *xrand.Source) (HyperbandResult, error) {
	if err := space.Validate(); err != nil {
		return HyperbandResult{}, err
	}
	h = h.defaults()
	eta := float64(h.Eta)
	sMax := int(math.Floor(math.Log(float64(h.MaxBudget)) / math.Log(eta)))
	var res HyperbandResult
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(eta, float64(s))))
		minR := int(math.Max(1, math.Floor(float64(h.MaxBudget)*math.Pow(eta, -float64(s)))))
		sha := SuccessiveHalving{Eta: h.Eta, MinBudget: minR, MaxBudget: h.MaxBudget}
		hist, err := sha.Optimize(obj, space, n, r)
		if err != nil {
			return HyperbandResult{}, err
		}
		res.Brackets = append(res.Brackets, Bracket{
			S: s, Configs: n, MinR: minR, History: hist,
		})
	}
	return res, nil
}
