package hpo

import (
	"math"
	"testing"
	"testing/quick"

	"varbench/internal/xrand"
)

// sphere is a simple convex objective with minimum at (0.3, 0.7).
func sphere(p Params) float64 {
	dx := p["x"] - 0.3
	dy := p["y"] - 0.7
	return dx*dx + dy*dy
}

var sphereSpace = Space{
	{Name: "x", Lo: 0, Hi: 1},
	{Name: "y", Lo: 0, Hi: 1},
}

func TestSpaceValidate(t *testing.T) {
	bad := []Space{
		{{Name: "", Lo: 0, Hi: 1}},
		{{Name: "a", Lo: 1, Hi: 1}},
		{{Name: "a", Lo: 0, Hi: 1, Log: true}},
		{{Name: "a", Lo: 0, Hi: 1}, {Name: "a", Lo: 0, Hi: 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("space %d should be invalid", i)
		}
	}
	if err := sphereSpace.Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestUnitRoundTrip(t *testing.T) {
	space := Space{
		{Name: "lr", Lo: 1e-4, Hi: 1e-1, Log: true},
		{Name: "mom", Lo: 0.5, Hi: 0.99},
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		p := space.SampleUniform(r)
		back := space.FromUnit(space.ToUnit(p))
		for _, d := range space {
			if math.Abs(back[d.Name]-p[d.Name])/p[d.Name] > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSampleUniformRespectsLogBounds(t *testing.T) {
	space := Space{{Name: "wd", Lo: 1e-6, Hi: 1e-2, Log: true}}
	r := xrand.New(1)
	below := 0
	const n = 5000
	for i := 0; i < n; i++ {
		v := space.SampleUniform(r)["wd"]
		if v < 1e-6 || v >= 1e-2 {
			t.Fatalf("sample %v out of bounds", v)
		}
		if v < 1e-4 { // geometric midpoint
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("log-uniform midpoint fraction = %v, want ≈0.5", frac)
	}
}

func TestHistoryBestAndBestSoFar(t *testing.T) {
	h := History{
		{Value: 3}, {Value: 1}, {Value: 2},
	}
	best, ok := h.Best()
	if !ok || best.Value != 1 {
		t.Fatalf("Best = %v, %v", best, ok)
	}
	curve := h.BestSoFar()
	want := []float64{3, 1, 1}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("BestSoFar = %v", curve)
		}
	}
	if _, ok := (History{}).Best(); ok {
		t.Fatal("empty history should report !ok")
	}
}

func TestRandomSearchFindsSphereMin(t *testing.T) {
	h, err := RandomSearch{}.Optimize(sphere, sphereSpace, 300, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 300 {
		t.Fatalf("budget not respected: %d", len(h))
	}
	best, _ := h.Best()
	if best.Value > 0.01 {
		t.Errorf("random search best = %v, want < 0.01", best.Value)
	}
}

func TestGridSearchDeterministic(t *testing.T) {
	h1, err := GridSearch{}.Optimize(sphere, sphereSpace, 100, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := GridSearch{}.Optimize(sphere, sphereSpace, 100, xrand.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if len(h1) != len(h2) {
		t.Fatal("grid lengths differ")
	}
	for i := range h1 {
		if h1[i].Value != h2[i].Value {
			t.Fatal("grid search consumed randomness")
		}
	}
	// 10×10 grid fits budget 100.
	if len(h1) != 100 {
		t.Errorf("grid size = %d, want 100", len(h1))
	}
}

func TestGridCoversBounds(t *testing.T) {
	h, err := GridSearch{}.Optimize(sphere, sphereSpace, 9, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 3×3 grid must include all four corners.
	corners := map[[2]float64]bool{}
	for _, tr := range h {
		corners[[2]float64{tr.Params["x"], tr.Params["y"]}] = true
	}
	for _, c := range [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if !corners[c] {
			t.Errorf("corner %v missing from grid", c)
		}
	}
}

func TestNoisyGridVariesAcrossSeedsButNotWithin(t *testing.T) {
	a, err := NoisyGrid{}.Optimize(sphere, sphereSpace, 25, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NoisyGrid{}.Optimize(sphere, sphereSpace, 25, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Fatal("same seed gave different noisy grids")
		}
	}
	c, err := NoisyGrid{}.Optimize(sphere, sphereSpace, 25, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Value != c[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical noisy grids")
	}
}

func TestNoisyGridStaysNearAnchors(t *testing.T) {
	// Perturbation is at most Δ/2 per anchor, so every noisy grid point is
	// within Δ of its deterministic counterpart (clipped to the space).
	det, err := GridSearch{}.Optimize(sphere, sphereSpace, 25, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NoisyGrid{}.Optimize(sphere, sphereSpace, 25, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	delta := 1.0 / 4 // 5 points per dim on [0,1]
	for i := range det {
		for _, name := range []string{"x", "y"} {
			if math.Abs(det[i].Params[name]-noisy[i].Params[name]) > delta {
				t.Fatalf("noisy grid point %d drifted more than Δ", i)
			}
		}
	}
}

func TestBayesOptBeatsRandomOnSphere(t *testing.T) {
	const budget = 40
	const reps = 5
	var boTotal, rsTotal float64
	for rep := 0; rep < reps; rep++ {
		bo, err := BayesOpt{InitRandom: 8, Candidates: 128}.Optimize(
			sphere, sphereSpace, budget, xrand.New(uint64(rep)))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RandomSearch{}.Optimize(sphere, sphereSpace, budget, xrand.New(uint64(rep)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := bo.Best()
		r, _ := rs.Best()
		boTotal += b.Value
		rsTotal += r.Value
		if len(bo) != budget {
			t.Fatalf("BayesOpt budget not respected: %d", len(bo))
		}
	}
	if boTotal > rsTotal*1.2 {
		t.Errorf("BayesOpt (%v) much worse than random (%v) on smooth objective",
			boTotal/reps, rsTotal/reps)
	}
}

func TestBayesOptHandlesConstantObjective(t *testing.T) {
	flat := func(Params) float64 { return 1.0 }
	h, err := BayesOpt{InitRandom: 3}.Optimize(flat, sphereSpace, 10, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 10 {
		t.Fatalf("constant objective broke BayesOpt: %d trials", len(h))
	}
}

func TestOptimizersOnLogSpace(t *testing.T) {
	// Minimum at lr = 1e-2 in log space.
	space := Space{{Name: "lr", Lo: 1e-5, Hi: 1, Log: true}}
	obj := func(p Params) float64 {
		d := math.Log10(p["lr"]) + 2
		return d * d
	}
	for _, opt := range []Optimizer{RandomSearch{}, GridSearch{}, NoisyGrid{}, BayesOpt{InitRandom: 5}} {
		h, err := opt.Optimize(obj, space, 30, xrand.New(3))
		if err != nil {
			t.Fatalf("%s: %v", opt.Name(), err)
		}
		best, _ := h.Best()
		if best.Value > 0.5 {
			t.Errorf("%s best = %v on log space, want < 0.5", opt.Name(), best.Value)
		}
	}
}

func TestParamsString(t *testing.T) {
	p := Params{"b": 2, "a": 1}
	if got := p.String(); got != "a=1 b=2" {
		t.Errorf("Params.String() = %q", got)
	}
}

func TestWidenExpandsBounds(t *testing.T) {
	w := widen(sphereSpace, 5)
	if w[0].Lo >= 0 || w[0].Hi <= 1 {
		t.Errorf("widen did not expand: %+v", w[0])
	}
	// Log dims stay positive.
	logSpace := Space{{Name: "lr", Lo: 1e-4, Hi: 1e-1, Log: true}}
	wl := widen(logSpace, 5)
	if wl[0].Lo <= 0 {
		t.Errorf("widened log dim non-positive: %v", wl[0].Lo)
	}
}
