package hpo

import (
	"testing"

	"varbench/internal/xrand"
)

func TestHyperbandBracketSchedule(t *testing.T) {
	hb := Hyperband{Eta: 3, MaxBudget: 27}
	res, err := hb.Optimize(budgetedSphere, sphereSpace, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// s_max = 3: brackets s = 3, 2, 1, 0.
	if len(res.Brackets) != 4 {
		t.Fatalf("brackets = %d, want 4", len(res.Brackets))
	}
	// Standard Hyperband schedule for η=3, R=27:
	// s=3: n=27, r=1; s=2: n=12, r=3; s=1: n=6, r=9; s=0: n=4, r=27.
	want := []struct{ n, r int }{{27, 1}, {12, 3}, {6, 9}, {4, 27}}
	for i, b := range res.Brackets {
		if b.Configs != want[i].n || b.MinR != want[i].r {
			t.Errorf("bracket s=%d: n=%d r=%d, want n=%d r=%d",
				b.S, b.Configs, b.MinR, want[i].n, want[i].r)
		}
	}
}

func TestHyperbandFindsMinimum(t *testing.T) {
	hb := Hyperband{Eta: 3, MaxBudget: 27}
	res, err := hb.Optimize(budgetedSphere, sphereSpace, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no best")
	}
	trueVal := best.Value - 1.0/27
	if trueVal > 0.05 {
		t.Errorf("Hyperband best true value = %v, want < 0.05", trueVal)
	}
	if res.TotalBudget() <= 0 {
		t.Error("budget accounting broken")
	}
}

func TestHyperbandDefaultsAndValidation(t *testing.T) {
	h := Hyperband{}.defaults()
	if h.Eta != 3 || h.MaxBudget != 27 {
		t.Errorf("defaults = %+v", h)
	}
	bad := Space{{Name: "x", Lo: 1, Hi: 0}}
	if _, err := (Hyperband{}).Optimize(budgetedSphere, bad, xrand.New(1)); err == nil {
		t.Error("invalid space accepted")
	}
}

func TestHyperbandLastBracketIsFullBudgetSearch(t *testing.T) {
	// Bracket s=0 runs every configuration at MaxBudget directly: its rung
	// history must contain only MaxBudget evaluations.
	hb := Hyperband{Eta: 3, MaxBudget: 9}
	res, err := hb.Optimize(budgetedSphere, sphereSpace, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	last := res.Brackets[len(res.Brackets)-1]
	if last.S != 0 {
		t.Fatalf("last bracket s = %d", last.S)
	}
	for _, r := range last.History.Rungs {
		if r.Budget != 9 {
			t.Errorf("bracket 0 rung at budget %d, want 9", r.Budget)
		}
	}
}
