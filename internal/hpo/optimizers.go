package hpo

import (
	"fmt"
	"math"

	"varbench/internal/gp"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// RandomSearch samples the space uniformly (log-uniformly on log dims).
// Its search range is widened by ±Δ/2 per dimension to match the coverage of
// NoisyGrid (Appendix E.3), keeping the two algorithms comparable.
type RandomSearch struct {
	// PointsPerDim is the grid resolution used only to compute the Δ
	// widening; 0 disables widening.
	PointsPerDim int
}

// Name implements Optimizer.
func (RandomSearch) Name() string { return "random-search" }

// Optimize implements Optimizer.
func (rs RandomSearch) Optimize(obj Objective, space Space, budget int, r *xrand.Source) (History, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	widened := widen(space, rs.PointsPerDim)
	h := make(History, 0, budget)
	for i := 0; i < budget; i++ {
		p := space.Clip(widened.SampleUniform(r))
		h = append(h, Trial{Params: p, Value: obj(p)})
	}
	return h, nil
}

// widen expands each dimension by ±Δ/2 where Δ is the grid interval for
// pointsPerDim points (in log space for log dims).
func widen(space Space, pointsPerDim int) Space {
	if pointsPerDim < 2 {
		return space
	}
	out := make(Space, len(space))
	for i, d := range space {
		lo, hi := d.Lo, d.Hi
		if d.Log {
			lo, hi = math.Log(lo), math.Log(hi)
		}
		delta := (hi - lo) / float64(pointsPerDim-1)
		lo -= delta / 2
		hi += delta / 2
		if d.Log {
			lo, hi = math.Exp(lo), math.Exp(hi)
		}
		out[i] = Dim{Name: d.Name, Lo: lo, Hi: hi, Log: d.Log}
	}
	return out
}

// GridSearch evaluates a full factorial grid. The number of points per
// dimension is the largest n with n^d ≤ budget (at least 2). Grid search is
// fully deterministic: it consumes no randomness.
type GridSearch struct{}

// Name implements Optimizer.
func (GridSearch) Name() string { return "grid-search" }

// Optimize implements Optimizer.
func (GridSearch) Optimize(obj Objective, space Space, budget int, r *xrand.Source) (History, error) {
	return gridOptimize(obj, space, budget, nil)
}

// NoisyGrid perturbs the grid anchor points: ãᵢ ~ U(aᵢ±Δᵢ/2), b̃ᵢ ~
// U(bᵢ±Δᵢ/2) (Appendix E.2). In expectation it covers the same grid as
// GridSearch, but each seed realizes a slightly different grid — modelling
// the arbitrary human choice of grid ranges that the paper identifies as an
// uncontrolled ξH source.
type NoisyGrid struct{}

// Name implements Optimizer.
func (NoisyGrid) Name() string { return "noisy-grid-search" }

// Optimize implements Optimizer.
func (NoisyGrid) Optimize(obj Objective, space Space, budget int, r *xrand.Source) (History, error) {
	return gridOptimize(obj, space, budget, r)
}

func gridOptimize(obj Objective, space Space, budget int, noise *xrand.Source) (History, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("hpo: budget must be ≥ 1")
	}
	d := len(space)
	n := pointsPerDim(budget, d)

	// Anchors in (possibly log-transformed) coordinates.
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i, dim := range space {
		lo[i], hi[i] = dim.Lo, dim.Hi
		if dim.Log {
			lo[i], hi[i] = math.Log(lo[i]), math.Log(hi[i])
		}
		switch {
		case n == 1:
			// Degenerate budget (< 2^d): a single grid point at the centre.
			// The noisy variant perturbs it within the full span — with one
			// point, the "arbitrary grid placement" is the point itself.
			mid := (lo[i] + hi[i]) / 2
			if noise != nil {
				mid = noise.Uniform(lo[i], hi[i])
			}
			lo[i], hi[i] = mid, mid
		case noise != nil:
			delta := (hi[i] - lo[i]) / float64(n-1)
			lo[i] = noise.Uniform(lo[i]-delta/2, lo[i]+delta/2)
			hi[i] = noise.Uniform(hi[i]-delta/2, hi[i]+delta/2)
		}
	}

	counters := make([]int, d)
	h := make(History, 0, intPow(n, d))
	for {
		p := make(Params, d)
		for i, dim := range space {
			v := lo[i]
			if n > 1 {
				v += (hi[i] - lo[i]) * float64(counters[i]) / float64(n-1)
			}
			if dim.Log {
				v = math.Exp(v)
			}
			p[dim.Name] = v
		}
		p = space.Clip(p)
		h = append(h, Trial{Params: p, Value: obj(p)})
		// Odometer increment.
		i := 0
		for ; i < d; i++ {
			counters[i]++
			if counters[i] < n {
				break
			}
			counters[i] = 0
		}
		if i == d {
			break
		}
	}
	return h, nil
}

func pointsPerDim(budget, d int) int {
	n := 2
	for intPow(n+1, d) <= budget {
		n++
	}
	if intPow(n, d) > budget {
		n = 1 // degenerate tiny budgets: single point per dim
	}
	return n
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		if out > 1<<40 {
			return out
		}
		out *= base
	}
	return out
}

// BayesOpt is Gaussian-process-based Bayesian optimization with expected
// improvement, mirroring the RoBO optimizer of the paper's experiments:
// InitRandom random evaluations, then GP fit + EI maximization over random
// candidates each iteration.
type BayesOpt struct {
	InitRandom int // random warm-up trials (default 5)
	Candidates int // EI candidate pool per iteration (default 256)
}

// Name implements Optimizer.
func (BayesOpt) Name() string { return "bayes-opt" }

// Optimize implements Optimizer.
func (b BayesOpt) Optimize(obj Objective, space Space, budget int, r *xrand.Source) (History, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	init := b.InitRandom
	if init <= 0 {
		init = 5
	}
	if init > budget {
		init = budget
	}
	cands := b.Candidates
	if cands <= 0 {
		cands = 256
	}

	h := make(History, 0, budget)
	for i := 0; i < init; i++ {
		p := space.SampleUniform(r)
		h = append(h, Trial{Params: p, Value: obj(p)})
	}

	lengthScales := []float64{0.05, 0.15, 0.3, 0.6, 1.2}
	noises := []float64{1e-4, 1e-2, 1e-1}
	for len(h) < budget {
		x := tensor.NewMatrix(len(h), len(space))
		y := make([]float64, len(h))
		for i, t := range h {
			copy(x.Row(i), space.ToUnit(t.Params))
			y[i] = t.Value
		}
		surrogate, err := gp.FitMLE(x, y, lengthScales, noises)

		var next Params
		if err != nil {
			// Degenerate surrogate (e.g. constant objective): fall back to
			// random sampling rather than aborting the search.
			next = space.SampleUniform(r)
		} else {
			best, _ := History(h).Best()
			bestEI := math.Inf(-1)
			for c := 0; c < cands; c++ {
				u := make([]float64, len(space))
				for j := range u {
					u[j] = r.Float64()
				}
				if ei := surrogate.ExpectedImprovement(u, best.Value); ei > bestEI {
					bestEI = ei
					next = space.FromUnit(u)
				}
			}
		}
		h = append(h, Trial{Params: next, Value: obj(next)})
	}
	return h, nil
}
