// Package hpo implements the hyperparameter-optimization substrate: search
// space definitions and the three optimizer families whose variance the
// paper studies in Figure 1 — random search, (noisy) grid search (Appendix
// E), and Bayesian optimization with a Gaussian process and expected
// improvement. Every optimizer's stochastic choices (ξH) come from an
// explicit xrand stream, so HOpt variance can be probed in isolation.
package hpo

import (
	"fmt"
	"math"
	"sort"

	"varbench/internal/xrand"
)

// Dim is one hyperparameter dimension with bounds [Lo, Hi]. Log dimensions
// (learning rates, weight decays) are searched uniformly in log space, like
// the paper's log(·) search spaces in Tables 2/3/5/6.
type Dim struct {
	Name string
	Lo   float64
	Hi   float64
	Log  bool
}

// Space is an ordered list of dimensions.
type Space []Dim

// Validate checks bounds (log dims must be positive, Lo < Hi).
func (s Space) Validate() error {
	seen := map[string]bool{}
	for _, d := range s {
		if d.Name == "" {
			return fmt.Errorf("hpo: empty dimension name")
		}
		if seen[d.Name] {
			return fmt.Errorf("hpo: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
		if d.Lo >= d.Hi {
			return fmt.Errorf("hpo: dimension %q has Lo ≥ Hi", d.Name)
		}
		if d.Log && d.Lo <= 0 {
			return fmt.Errorf("hpo: log dimension %q needs positive bounds", d.Name)
		}
	}
	return nil
}

// Params assigns a value to each hyperparameter.
type Params map[string]float64

// Clone returns a copy of p.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// String renders the parameters in deterministic name order.
func (p Params) String() string {
	out := ""
	for i, name := range sortedNames(p) {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.4g", name, p[name])
	}
	return out
}

// Clip returns a copy of p with every dimension clipped into the space
// bounds (used when noisy-grid perturbation extends past the search space).
func (s Space) Clip(p Params) Params {
	c := p.Clone()
	for _, d := range s {
		if v, ok := c[d.Name]; ok {
			if v < d.Lo {
				c[d.Name] = d.Lo
			}
			if v > d.Hi {
				c[d.Name] = d.Hi
			}
		}
	}
	return c
}

// SampleUniform draws one point uniformly (log-uniformly for log dims).
func (s Space) SampleUniform(r *xrand.Source) Params {
	p := make(Params, len(s))
	for _, d := range s {
		if d.Log {
			p[d.Name] = r.LogUniform(d.Lo, d.Hi)
		} else {
			p[d.Name] = r.Uniform(d.Lo, d.Hi)
		}
	}
	return p
}

// ToUnit maps params to [0,1]^d coordinates (log dims in log space), the
// representation used by the GP surrogate.
func (s Space) ToUnit(p Params) []float64 {
	u := make([]float64, len(s))
	for i, d := range s {
		v := p[d.Name]
		if d.Log {
			u[i] = (math.Log(v) - math.Log(d.Lo)) / (math.Log(d.Hi) - math.Log(d.Lo))
		} else {
			u[i] = (v - d.Lo) / (d.Hi - d.Lo)
		}
	}
	return u
}

// FromUnit maps unit coordinates back to params.
func (s Space) FromUnit(u []float64) Params {
	p := make(Params, len(s))
	for i, d := range s {
		v := u[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if d.Log {
			p[d.Name] = math.Exp(math.Log(d.Lo) + v*(math.Log(d.Hi)-math.Log(d.Lo)))
		} else {
			p[d.Name] = d.Lo + v*(d.Hi-d.Lo)
		}
	}
	return p
}

// Trial is one objective evaluation.
type Trial struct {
	Params Params
	Value  float64 // objective value (lower is better)
}

// History is an ordered list of trials.
type History []Trial

// Best returns the trial with the lowest value; ok is false for empty
// history.
func (h History) Best() (Trial, bool) {
	if len(h) == 0 {
		return Trial{}, false
	}
	best := h[0]
	for _, t := range h[1:] {
		if t.Value < best.Value {
			best = t
		}
	}
	return best, true
}

// BestSoFar returns the running minimum after each trial — the optimization
// curves of Figure F.2.
func (h History) BestSoFar() []float64 {
	out := make([]float64, len(h))
	cur := math.Inf(1)
	for i, t := range h {
		if t.Value < cur {
			cur = t.Value
		}
		out[i] = cur
	}
	return out
}

// Objective evaluates one hyperparameter setting, returning a value to
// minimize (e.g. validation error; Equation 2's r(λ)).
type Objective func(Params) float64

// Optimizer runs a budgeted hyperparameter search. Implementations must be
// deterministic given the stream r.
type Optimizer interface {
	Name() string
	Optimize(obj Objective, space Space, budget int, r *xrand.Source) (History, error)
}

// sortedNames returns dimension names in a stable order for deterministic
// iteration.
func sortedNames(p Params) []string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
