package hpo

import (
	"fmt"
	"sort"

	"varbench/internal/xrand"
)

// BudgetedObjective evaluates hyperparameters at a given training budget
// (e.g. epochs). Successive halving probes many configurations cheaply and
// spends full budget only on survivors. Implementations may cache partial
// training state per configuration and continue rather than restart (see
// pipeline.BudgetedObjective).
type BudgetedObjective func(p Params, budget int) float64

// SuccessiveHalving is the SHA bandit-based hyperparameter optimizer
// (Jamieson & Talwalkar 2016), an extension beyond the paper's three
// optimizers: n random configurations start at MinBudget; at each rung the
// best 1/Eta fraction survive and train Eta× longer, until MaxBudget.
type SuccessiveHalving struct {
	Eta       int // elimination factor (default 3)
	MinBudget int // first-rung budget (default 1)
	MaxBudget int // final-rung budget (default 27)
}

// Name identifies the optimizer.
func (SuccessiveHalving) Name() string { return "successive-halving" }

func (s SuccessiveHalving) defaults() SuccessiveHalving {
	if s.Eta < 2 {
		s.Eta = 3
	}
	if s.MinBudget < 1 {
		s.MinBudget = 1
	}
	if s.MaxBudget < s.MinBudget {
		s.MaxBudget = s.MinBudget * s.Eta * s.Eta * s.Eta
	}
	return s
}

// RungResult records one configuration's evaluation at one rung.
type RungResult struct {
	Rung   int
	Budget int
	Trial  Trial
}

// SHAHistory is the full successive-halving trace.
type SHAHistory struct {
	Rungs []RungResult
	// Final holds the surviving configurations' last-rung trials.
	Final History
}

// Best returns the best final-rung trial.
func (h SHAHistory) Best() (Trial, bool) { return h.Final.Best() }

// TotalBudget returns the summed training budget consumed, assuming
// restart-based evaluation (continuation-based objectives consume less).
func (h SHAHistory) TotalBudget() int {
	total := 0
	for _, r := range h.Rungs {
		total += r.Budget
	}
	return total
}

// Optimize runs successive halving with n initial random configurations.
// The objective must be deterministic given (params, budget) for the
// elimination ordering to be meaningful.
func (s SuccessiveHalving) Optimize(obj BudgetedObjective, space Space, n int,
	r *xrand.Source) (SHAHistory, error) {
	if err := space.Validate(); err != nil {
		return SHAHistory{}, err
	}
	if n < 1 {
		return SHAHistory{}, fmt.Errorf("hpo: need at least one configuration")
	}
	s = s.defaults()

	configs := make([]Params, n)
	for i := range configs {
		configs[i] = space.SampleUniform(r)
	}

	var hist SHAHistory
	budget := s.MinBudget
	rung := 0
	for {
		results := make(History, len(configs))
		for i, p := range configs {
			results[i] = Trial{Params: p, Value: obj(p, budget)}
			hist.Rungs = append(hist.Rungs, RungResult{Rung: rung, Budget: budget, Trial: results[i]})
		}
		if budget >= s.MaxBudget || len(configs) == 1 {
			hist.Final = results
			return hist, nil
		}
		// Keep the top 1/Eta fraction (at least one).
		sort.SliceStable(results, func(a, b int) bool {
			return results[a].Value < results[b].Value
		})
		keep := len(configs) / s.Eta
		if keep < 1 {
			keep = 1
		}
		configs = configs[:0]
		for _, t := range results[:keep] {
			configs = append(configs, t.Params)
		}
		budget *= s.Eta
		if budget > s.MaxBudget {
			budget = s.MaxBudget
		}
		rung++
	}
}
