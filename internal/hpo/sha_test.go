package hpo

import (
	"math"
	"testing"

	"varbench/internal/xrand"
)

// budgetedSphere converges toward the true value as budget grows: at low
// budget the evaluation is biased away from the optimum, modelling partial
// training.
func budgetedSphere(p Params, budget int) float64 {
	dx := p["x"] - 0.3
	dy := p["y"] - 0.7
	true_ := dx*dx + dy*dy
	return true_ + 1.0/float64(budget) // uniform optimism gap shrinking in budget
}

func TestSHAFindsMinimum(t *testing.T) {
	sha := SuccessiveHalving{Eta: 3, MinBudget: 1, MaxBudget: 27}
	hist, err := sha.Optimize(budgetedSphere, sphereSpace, 27, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := hist.Best()
	if !ok {
		t.Fatal("no best")
	}
	// Remove the budget offset to compare against the true objective.
	trueVal := best.Value - 1.0/27
	if trueVal > 0.05 {
		t.Errorf("SHA best true value = %v, want < 0.05", trueVal)
	}
}

func TestSHARungStructure(t *testing.T) {
	sha := SuccessiveHalving{Eta: 3, MinBudget: 1, MaxBudget: 9}
	hist, err := sha.Optimize(budgetedSphere, sphereSpace, 9, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Rung 0: 9 configs at budget 1; rung 1: 3 at budget 3; rung 2: 1 at 9.
	counts := map[int]int{}
	budgets := map[int]int{}
	for _, r := range hist.Rungs {
		counts[r.Rung]++
		budgets[r.Rung] = r.Budget
	}
	if counts[0] != 9 || counts[1] != 3 || counts[2] != 1 {
		t.Errorf("rung sizes = %v, want 9/3/1", counts)
	}
	if budgets[0] != 1 || budgets[1] != 3 || budgets[2] != 9 {
		t.Errorf("rung budgets = %v, want 1/3/9", budgets)
	}
	if len(hist.Final) != 1 {
		t.Errorf("final rung has %d configs", len(hist.Final))
	}
	// Total restart-based budget: 9·1 + 3·3 + 1·9 = 27, vs 9·9 = 81 for
	// full-budget random search over the same configs.
	if hist.TotalBudget() != 27 {
		t.Errorf("total budget = %d, want 27", hist.TotalBudget())
	}
}

func TestSHASurvivorsAreBest(t *testing.T) {
	sha := SuccessiveHalving{Eta: 2, MinBudget: 1, MaxBudget: 4}
	hist, err := sha.Optimize(budgetedSphere, sphereSpace, 8, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Collect rung-0 values and rung-1 participants: every rung-1 config's
	// rung-0 value must be ≤ the median of eliminated ones.
	var rung0 []RungResult
	rung1 := map[string]bool{}
	for _, r := range hist.Rungs {
		if r.Rung == 0 {
			rung0 = append(rung0, r)
		}
		if r.Rung == 1 {
			rung1[r.Trial.Params.String()] = true
		}
	}
	var surviving, eliminated []float64
	for _, r := range rung0 {
		if rung1[r.Trial.Params.String()] {
			surviving = append(surviving, r.Trial.Value)
		} else {
			eliminated = append(eliminated, r.Trial.Value)
		}
	}
	maxSurv := math.Inf(-1)
	for _, v := range surviving {
		if v > maxSurv {
			maxSurv = v
		}
	}
	for _, v := range eliminated {
		if v < maxSurv {
			t.Errorf("eliminated config (%.4f) was better than a survivor (%.4f)", v, maxSurv)
		}
	}
}

func TestSHADefaultsAndErrors(t *testing.T) {
	s := SuccessiveHalving{}.defaults()
	if s.Eta != 3 || s.MinBudget != 1 || s.MaxBudget != 27 {
		t.Errorf("defaults = %+v", s)
	}
	if _, err := (SuccessiveHalving{}).Optimize(budgetedSphere, sphereSpace, 0, xrand.New(1)); err == nil {
		t.Error("n=0 should error")
	}
	bad := Space{{Name: "x", Lo: 1, Hi: 0}}
	if _, err := (SuccessiveHalving{}).Optimize(budgetedSphere, bad, 3, xrand.New(1)); err == nil {
		t.Error("invalid space should error")
	}
}

func TestSHASingleConfig(t *testing.T) {
	sha := SuccessiveHalving{Eta: 3, MinBudget: 2, MaxBudget: 18}
	hist, err := sha.Optimize(budgetedSphere, sphereSpace, 1, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Final) != 1 {
		t.Errorf("single-config SHA final = %d", len(hist.Final))
	}
}
