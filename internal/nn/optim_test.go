package nn

import (
	"testing"

	"varbench/internal/xrand"
)

func adamConfig() TrainConfig {
	cfg := baseConfig(3, CrossEntropy)
	cfg.Algo = Adam
	cfg.LR = 0.01
	cfg.Momentum = 0 // unused by Adam
	return cfg
}

func TestAdamLearns(t *testing.T) {
	train := toyClassification(600, 1)
	test := toyClassification(400, 2)
	res, err := Train(adamConfig(), train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(res.Model, test); acc < 0.9 {
		t.Errorf("Adam test accuracy = %v, want > 0.9", acc)
	}
}

func TestAdamBitReproducible(t *testing.T) {
	train := toyClassification(200, 1)
	cfg := adamConfig()
	cfg.Epochs = 4
	cfg.Dropout = 0.2
	a, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	if !identicalModels(a.Model, b.Model) {
		t.Fatal("Adam training not reproducible")
	}
}

func TestAdamDiffersFromSGD(t *testing.T) {
	train := toyClassification(200, 1)
	sgdCfg := baseConfig(3, CrossEntropy)
	sgdCfg.Epochs = 2
	adamCfg := sgdCfg
	adamCfg.Algo = Adam
	a, err := Train(sgdCfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(adamCfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if identicalModels(a.Model, b.Model) {
		t.Fatal("Adam produced identical weights to SGD")
	}
}

func TestAdamDefaults(t *testing.T) {
	b1, b2, eps := adamDefaults(0, 0, 0)
	if b1 != 0.9 || b2 != 0.999 || eps != 1e-8 {
		t.Errorf("defaults = %v %v %v", b1, b2, eps)
	}
	b1, b2, eps = adamDefaults(0.8, 0.99, 1e-6)
	if b1 != 0.8 || b2 != 0.99 || eps != 1e-6 {
		t.Error("explicit values overwritten")
	}
}

func TestAdamCheckpointResume(t *testing.T) {
	// The second-moment state and step counter must survive checkpointing:
	// bias correction depends on the step count, so a mismatch would show
	// up as diverging weights.
	train := toyClassification(150, 2)
	cfg := adamConfig()
	cfg.Epochs = 5
	ref, err := Train(cfg, train, xrand.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(cfg, train, xrand.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if err := tr.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeTrainer(cfg, train, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if err := resumed.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	if !identicalModels(ref.Model, resumed.Model()) {
		t.Fatal("Adam resume diverged from straight run")
	}
}

func TestAdamCheckpointRejectsSGDCheckpoint(t *testing.T) {
	train := toyClassification(60, 1)
	sgdCfg := baseConfig(3, CrossEntropy)
	sgdCfg.Epochs = 2
	tr, err := NewTrainer(sgdCfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	adamCfg := sgdCfg
	adamCfg.Algo = Adam
	if _, err := ResumeTrainer(adamCfg, train, ckpt); err == nil {
		t.Fatal("SGD checkpoint accepted for Adam config")
	}
}
