package nn

import "math"

// Algo selects the parameter-update rule.
type Algo int

const (
	// SGD is stochastic gradient descent with momentum (the paper's
	// CIFAR10/PascalVOC/MHC optimizer).
	SGD Algo = iota
	// Adam is the adaptive-moment optimizer used by the BERT case studies
	// (Table 3 fixes β1 = 0.9, β2 = 0.999).
	Adam
)

// optimState carries the mutable optimizer state: first moments (also the
// SGD velocity), second moments (Adam only), and the step counter for
// Adam's bias correction.
type optimState struct {
	m    *gradients
	v    *gradients // nil for SGD
	step int
}

func newOptimState(model *MLP, algo Algo) *optimState {
	s := &optimState{m: newGradients(model)}
	if algo == Adam {
		s.v = newGradients(model)
	}
	return s
}

// adamDefaults fills unset Adam coefficients with the Table 3 values.
func adamDefaults(beta1, beta2, eps float64) (float64, float64, float64) {
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	return beta1, beta2, eps
}

// applyUpdate performs one optimizer step on all parameters.
func applyUpdate(model *MLP, st *optimState, grad *gradients, cfg TrainConfig, lr float64) {
	switch cfg.Algo {
	case Adam:
		applyAdam(model, st, grad, cfg, lr)
	default:
		applySGD(model, st.m, grad, lr, cfg.Momentum, cfg.WeightDecay)
	}
}

// applyAdam performs one Adam step with decoupled-style L2 added to the
// gradient (the classic Adam + weight decay formulation):
//
//	m ← β1·m + (1-β1)·g ; v ← β2·v + (1-β2)·g² ;
//	θ ← θ − lr·m̂/(√v̂ + ε), with bias-corrected m̂, v̂.
func applyAdam(model *MLP, st *optimState, grad *gradients, cfg TrainConfig, lr float64) {
	beta1, beta2, eps := adamDefaults(cfg.Beta1, cfg.Beta2, cfg.AdamEps)
	st.step++
	bc1 := 1 - math.Pow(beta1, float64(st.step))
	bc2 := 1 - math.Pow(beta2, float64(st.step))
	for l := range model.Weights {
		w := model.Weights[l]
		g := grad.w[l]
		m := st.m.w[l]
		v := st.v.w[l]
		for i := range w.Data {
			gi := g.Data[i] + cfg.WeightDecay*w.Data[i]
			m.Data[i] = beta1*m.Data[i] + (1-beta1)*gi
			v.Data[i] = beta2*v.Data[i] + (1-beta2)*gi*gi
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			w.Data[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
		}
		b := model.Biases[l]
		gb := grad.b[l]
		mb := st.m.b[l]
		vb := st.v.b[l]
		for i := range b {
			gi := gb[i]
			mb[i] = beta1*mb[i] + (1-beta1)*gi
			vb[i] = beta2*vb[i] + (1-beta2)*gi*gi
			mHat := mb[i] / bc1
			vHat := vb[i] / bc2
			b[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
		}
	}
}
