// Package nn implements the from-scratch neural-network substrate used by
// the case studies: multi-layer perceptrons with manual backpropagation,
// seedable weight initialization, dropout, and SGD with momentum, weight
// decay and exponential learning-rate decay (the optimizer family of
// Appendix D). Every stochastic element draws from a named xrand stream, so
// each source of variation in Figure 1 can be varied in isolation.
package nn

import (
	"math"

	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// Initializer fills a weight matrix given its fan-in and fan-out.
type Initializer interface {
	Init(w *tensor.Matrix, r *xrand.Source)
	Name() string
}

// GlorotUniform is the Glorot & Bengio (2010) uniform initializer used by
// the CIFAR10-VGG11 and MHC case studies: U(±sqrt(6/(fanIn+fanOut))).
type GlorotUniform struct{}

// Init implements Initializer.
func (GlorotUniform) Init(w *tensor.Matrix, r *xrand.Source) {
	limit := math.Sqrt(6 / float64(w.Rows+w.Cols))
	for i := range w.Data {
		w.Data[i] = r.Uniform(-limit, limit)
	}
}

// Name implements Initializer.
func (GlorotUniform) Name() string { return "glorot-uniform" }

// He is the He et al. (2015) normal initializer, suited to ReLU networks:
// N(0, 2/fanIn).
type He struct{}

// Init implements Initializer.
func (He) Init(w *tensor.Matrix, r *xrand.Source) {
	std := math.Sqrt(2 / float64(w.Rows))
	for i := range w.Data {
		w.Data[i] = std * r.NormFloat64()
	}
}

// Name implements Initializer.
func (He) Name() string { return "he" }

// Normal initializes from N(0, Std²); the BERT case studies tune this Std as
// a hyperparameter for the final classifier head (Table 3).
type Normal struct {
	Std float64
}

// Init implements Initializer.
func (n Normal) Init(w *tensor.Matrix, r *xrand.Source) {
	for i := range w.Data {
		w.Data[i] = n.Std * r.NormFloat64()
	}
}

// Name implements Initializer.
func (n Normal) Name() string { return "normal" }
