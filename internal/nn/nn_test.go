package nn

import (
	"math"
	"testing"

	"varbench/internal/data"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

func toyClassification(n int, seed uint64) *data.Dataset {
	gm := data.NewGaussianMixture("toy", 3, 6, 3, 1, 7)
	return gm.Sample(n, xrand.New(seed))
}

func toyRegression(n int, seed uint64) *data.Dataset {
	p := data.NewPeptide("toy-reg", 6, 4, 2, 3, 0.2, 7)
	return p.Sample(n, xrand.New(seed))
}

func baseConfig(out int, loss Loss) TrainConfig {
	return TrainConfig{
		Hidden:      []int{16},
		Activation:  ReLU,
		Loss:        loss,
		OutDim:      out,
		Init:        GlorotUniform{},
		LR:          0.1,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		LRDecay:     0.98,
		Epochs:      30,
		BatchSize:   32,
	}
}

func TestGradCheckCrossEntropy(t *testing.T) {
	d := toyClassification(20, 1)
	r := xrand.New(2)
	m, err := NewMLP([]int{d.Dim(), 8, 3}, Tanh, CrossEntropy, 0, GlorotUniform{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if errRate := GradCheck(m, d.X, d.Y, 60, r); errRate > 1e-4 {
		t.Errorf("cross-entropy gradient check failed: max rel err %v", errRate)
	}
}

func TestGradCheckMSE(t *testing.T) {
	d := toyRegression(20, 1)
	r := xrand.New(3)
	m, err := NewMLP([]int{d.Dim(), 8, 1}, Tanh, MSELoss, 0, He{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if errRate := GradCheck(m, d.X, d.Y, 60, r); errRate > 1e-4 {
		t.Errorf("MSE gradient check failed: max rel err %v", errRate)
	}
}

func TestGradCheckReLU(t *testing.T) {
	d := toyClassification(16, 4)
	r := xrand.New(5)
	m, err := NewMLP([]int{d.Dim(), 10, 10, 3}, ReLU, CrossEntropy, 0, He{}, r)
	if err != nil {
		t.Fatal(err)
	}
	// ReLU kinks can make individual probes fail exactly at 0; tolerance is
	// looser but still tight enough to catch systematic errors.
	if errRate := GradCheck(m, d.X, d.Y, 60, r); errRate > 1e-3 {
		t.Errorf("ReLU gradient check failed: max rel err %v", errRate)
	}
}

func TestTrainingLearnsClassification(t *testing.T) {
	train := toyClassification(600, 1)
	test := toyClassification(400, 2)
	res, err := Train(baseConfig(3, CrossEntropy), train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(res.Model, test); acc < 0.9 {
		t.Errorf("test accuracy = %v, want > 0.9 on separable mixture", acc)
	}
	// Loss must decrease overall.
	first, last := res.EpochLosses[0], res.EpochLosses[len(res.EpochLosses)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %v → %v", first, last)
	}
}

func TestTrainingLearnsRegression(t *testing.T) {
	train := toyRegression(800, 1)
	test := toyRegression(400, 2)
	cfg := baseConfig(1, MSELoss)
	cfg.LR = 0.05
	cfg.Epochs = 60
	res, err := Train(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	pred := res.Model.PredictValues(test.X)
	// Compare against predicting the mean.
	meanY := 0.0
	for _, y := range train.Y {
		meanY += y
	}
	meanY /= float64(train.N())
	var mseModel, mseMean float64
	for i, y := range test.Y {
		mseModel += (pred[i] - y) * (pred[i] - y)
		mseMean += (meanY - y) * (meanY - y)
	}
	if mseModel >= mseMean*0.8 {
		t.Errorf("regression barely beats mean predictor: %v vs %v", mseModel, mseMean)
	}
}

func TestTrainingBitReproducible(t *testing.T) {
	// Same ξ (all streams) ⇒ bit-identical weights. This is the Appendix A
	// reproducibility requirement.
	train := toyClassification(200, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Dropout = 0.2
	cfg.Epochs = 5
	a, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	for l := range a.Model.Weights {
		for i := range a.Model.Weights[l].Data {
			if a.Model.Weights[l].Data[i] != b.Model.Weights[l].Data[i] {
				t.Fatalf("weights differ at layer %d index %d", l, i)
			}
		}
	}
}

func TestVaryingOneSourceChangesResult(t *testing.T) {
	train := toyClassification(200, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Dropout = 0.2
	cfg.Epochs = 3
	base, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []xrand.Var{xrand.VarInit, xrand.VarOrder, xrand.VarDropout} {
		streams := xrand.NewStreams(42)
		streams.Reseed(v, 999)
		alt, err := Train(cfg, train, streams)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for l := range base.Model.Weights {
			for i := range base.Model.Weights[l].Data {
				if base.Model.Weights[l].Data[i] != alt.Model.Weights[l].Data[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("reseeding %s did not change the trained weights", v)
		}
	}
}

func TestDropoutOnlyAppliedInTraining(t *testing.T) {
	d := toyClassification(50, 1)
	r := xrand.New(1)
	m, err := NewMLP([]int{d.Dim(), 32, 3}, ReLU, CrossEntropy, 0.5, GlorotUniform{}, r)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Forward(d.X)
	b := m.Forward(d.X)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("inference is not deterministic: dropout leaked into Forward")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := xrand.New(1)
	logits := tensor.NewMatrix(10, 5)
	for i := range logits.Data {
		logits.Data[i] = r.Normal(0, 10) // large scale: tests stability
	}
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		sum := 0.0
		for _, v := range p.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatal("invalid probability")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestParallelShardsMatchSequential(t *testing.T) {
	// The deterministic parallel reducer must produce (nearly) the same
	// gradient as sequential: same value up to FP reassociation.
	train := toyClassification(256, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Epochs = 2
	seqRes, err := Train(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reducer = tensor.ReduceParallelDeterministic
	cfg.Shards = 4
	parRes, err := Train(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	for l := range seqRes.Model.Weights {
		for i := range seqRes.Model.Weights[l].Data {
			diff := math.Abs(seqRes.Model.Weights[l].Data[i] - parRes.Model.Weights[l].Data[i])
			if diff > 1e-8 {
				t.Fatalf("parallel gradient diverged: |Δ| = %v", diff)
			}
		}
	}
}

func TestNondeterministicReducerProducesNumericalNoise(t *testing.T) {
	// With all seeds fixed but completion-order folding, repeated trainings
	// should differ slightly — the "numerical noise" row of Figure 1.
	train := toyClassification(256, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Epochs = 3
	cfg.Reducer = tensor.ReduceNondeterministic
	cfg.Shards = 4
	ref, err := Train(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for attempt := 0; attempt < 10 && !differs; attempt++ {
		alt, err := Train(cfg, train, xrand.NewStreams(1))
		if err != nil {
			t.Fatal(err)
		}
		for l := range ref.Model.Weights {
			for i := range ref.Model.Weights[l].Data {
				if ref.Model.Weights[l].Data[i] != alt.Model.Weights[l].Data[i] {
					differs = true
					break
				}
			}
		}
	}
	if !differs {
		t.Skip("scheduler produced identical fold order in all attempts (rare but possible)")
	}
	// The noise must be small relative to the weights themselves.
	alt, err := Train(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	num, den := 0.0, 0.0
	for l := range ref.Model.Weights {
		for i := range ref.Model.Weights[l].Data {
			d := ref.Model.Weights[l].Data[i] - alt.Model.Weights[l].Data[i]
			num += d * d
			den += ref.Model.Weights[l].Data[i] * ref.Model.Weights[l].Data[i]
		}
	}
	if den == 0 || num/den > 1e-2 {
		t.Errorf("numerical noise too large: relative sq norm %v", num/den)
	}
}

func TestInitializers(t *testing.T) {
	r := xrand.New(1)
	w := tensor.NewMatrix(100, 50)
	GlorotUniform{}.Init(w, r)
	limit := math.Sqrt(6.0 / 150)
	lo, hi := w.Data[0], w.Data[0]
	for _, v := range w.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < -limit || hi > limit {
		t.Errorf("Glorot bounds violated: [%v, %v] vs ±%v", lo, hi, limit)
	}
	He{}.Init(w, r)
	var sq float64
	for _, v := range w.Data {
		sq += v * v
	}
	std := math.Sqrt(sq / float64(len(w.Data)))
	want := math.Sqrt(2.0 / 100)
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("He std = %v, want ≈ %v", std, want)
	}
	Normal{Std: 0.2}.Init(w, r)
	sq = 0
	for _, v := range w.Data {
		sq += v * v
	}
	std = math.Sqrt(sq / float64(len(w.Data)))
	if math.Abs(std-0.2)/0.2 > 0.1 {
		t.Errorf("Normal std = %v, want ≈ 0.2", std)
	}
}

func TestConfigValidation(t *testing.T) {
	train := toyClassification(10, 1)
	bad := []TrainConfig{
		{},
		{OutDim: 1, LR: -1, Epochs: 1, BatchSize: 1, Init: He{}},
		{OutDim: 1, LR: 0.1, Epochs: 0, BatchSize: 1, Init: He{}},
		{OutDim: 1, LR: 0.1, Epochs: 1, BatchSize: 1, Init: He{}, Dropout: 1.0},
		{OutDim: 1, LR: 0.1, Epochs: 1, BatchSize: 1},
	}
	for i, cfg := range bad {
		if _, err := Train(cfg, train, xrand.NewStreams(1)); err == nil {
			t.Errorf("config %d should have been rejected", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := xrand.New(1)
	m, err := NewMLP([]int{4, 3, 2}, ReLU, CrossEntropy, 0, He{}, r)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Weights[0].Data[0] += 99
	c.Biases[1][0] += 7
	if m.Weights[0].Data[0] == c.Weights[0].Data[0] || m.Biases[1][0] == c.Biases[1][0] {
		t.Fatal("clone shares storage with original")
	}
	if m.NumParams() != 4*3+3+3*2+2 {
		t.Errorf("NumParams = %d", m.NumParams())
	}
}

func accuracyOf(m *MLP, d *data.Dataset) float64 {
	pred := m.PredictLabels(d.X)
	hits := 0
	for i, p := range pred {
		if p == int(d.Y[i]) {
			hits++
		}
	}
	return float64(hits) / float64(d.N())
}
