package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"varbench/internal/augment"
	"varbench/internal/data"
	"varbench/internal/xrand"
)

// Trainer is a resumable training loop. It implements the paper's Appendix A
// reproducibility protocol: training can be interrupted after any epoch,
// checkpointed (model weights, optimizer velocity, learning-rate schedule
// position AND the state of every random stream), and resumed later with
// bit-identical results. Train is a convenience wrapper that runs a Trainer
// to completion.
type Trainer struct {
	cfg     TrainConfig
	model   *MLP
	optim   *optimState
	streams *xrand.Streams
	train   *data.Dataset
	order   []int
	epoch   int
	lr      float64
	decay   float64
	losses  []float64
	yBuf    []float64
}

// NewTrainer initializes a training run: the model is built and initialized
// from the weight stream immediately, so two Trainers created from identical
// streams hold identical parameters.
func NewTrainer(cfg TrainConfig, train *data.Dataset, streams *xrand.Streams) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := append([]int{train.Dim()}, cfg.Hidden...)
	sizes = append(sizes, cfg.OutDim)
	model, err := NewMLP(sizes, cfg.Activation, cfg.Loss, cfg.Dropout,
		cfg.Init, streams.Get(xrand.VarInit))
	if err != nil {
		return nil, err
	}
	decay := cfg.LRDecay
	if decay == 0 {
		decay = 1
	}
	order := make([]int, train.N())
	for i := range order {
		order[i] = i
	}
	return &Trainer{
		cfg: cfg, model: model, optim: newOptimState(model, cfg.Algo),
		streams: streams, train: train, order: order,
		lr: cfg.LR, decay: decay,
		yBuf: make([]float64, cfg.BatchSize),
	}, nil
}

// Done reports whether all configured epochs have run.
func (t *Trainer) Done() bool { return t.epoch >= t.cfg.Epochs }

// Epoch runs one training epoch. Calling it after Done is an error.
func (t *Trainer) Epoch() error {
	if t.Done() {
		return fmt.Errorf("nn: training already finished (%d epochs)", t.cfg.Epochs)
	}
	orderRng := t.streams.Get(xrand.VarOrder)
	dropoutRng := t.streams.Get(xrand.VarDropout)
	augmentRng := t.streams.Get(xrand.VarAugment)
	orderRng.ShuffleInts(t.order)
	n := t.train.N()
	epochLoss, batches := 0.0, 0
	for start := 0; start < n; start += t.cfg.BatchSize {
		end := start + t.cfg.BatchSize
		if end > n {
			end = n
		}
		idx := t.order[start:end]
		xb := augment.Batch(t.train.X, idx, t.cfg.Augment, augmentRng)
		yb := t.yBuf[:len(idx)]
		for i, j := range idx {
			yb[i] = t.train.Y[j]
		}
		loss, grad := batchGradient(t.model, t.cfg, xb, yb, dropoutRng)
		applyUpdate(t.model, t.optim, grad, t.cfg, t.lr)
		epochLoss += loss
		batches++
	}
	t.losses = append(t.losses, epochLoss/float64(batches))
	t.lr *= t.decay
	t.epoch++
	return nil
}

// Model returns the current model (live reference, not a copy).
func (t *Trainer) Model() *MLP { return t.model }

// Result returns the training result accumulated so far.
func (t *Trainer) Result() *TrainResult {
	return &TrainResult{Model: t.model, EpochLosses: append([]float64(nil), t.losses...)}
}

// trainerState is the serialized form of a Trainer. The configuration and
// dataset are NOT serialized: like the paper's setup, code and data must be
// supplied identically at resumption; the checkpoint carries only mutable
// state.
type trainerState struct {
	Epoch    int
	LR       float64
	Step     int
	Losses   []float64
	Weights  [][]float64
	Biases   [][]float64
	MomW     [][]float64
	MomB     [][]float64
	SecW     [][]float64 // Adam second moments; nil for SGD
	SecB     [][]float64
	Order    []int
	Streams  []byte
	NumLayer int
}

// Checkpoint serializes the complete mutable training state.
func (t *Trainer) Checkpoint() ([]byte, error) {
	st := trainerState{
		Epoch:    t.epoch,
		LR:       t.lr,
		Step:     t.optim.step,
		Losses:   append([]float64(nil), t.losses...),
		Order:    append([]int(nil), t.order...),
		Streams:  t.streams.Checkpoint(),
		NumLayer: t.model.NumLayers(),
	}
	for l := 0; l < t.model.NumLayers(); l++ {
		st.Weights = append(st.Weights, append([]float64(nil), t.model.Weights[l].Data...))
		st.Biases = append(st.Biases, append([]float64(nil), t.model.Biases[l]...))
		st.MomW = append(st.MomW, append([]float64(nil), t.optim.m.w[l].Data...))
		st.MomB = append(st.MomB, append([]float64(nil), t.optim.m.b[l]...))
		if t.optim.v != nil {
			st.SecW = append(st.SecW, append([]float64(nil), t.optim.v.w[l].Data...))
			st.SecB = append(st.SecB, append([]float64(nil), t.optim.v.b[l]...))
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: checkpoint encode: %w", err)
	}
	return buf.Bytes(), nil
}

// ResumeTrainer rebuilds a Trainer from a checkpoint. cfg and train must be
// identical to the original run's.
func ResumeTrainer(cfg TrainConfig, train *data.Dataset, ckpt []byte) (*Trainer, error) {
	var st trainerState
	if err := gob.NewDecoder(bytes.NewReader(ckpt)).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: checkpoint decode: %w", err)
	}
	streams, err := xrand.RestoreCheckpoint(st.Streams)
	if err != nil {
		return nil, fmt.Errorf("nn: checkpoint streams: %w", err)
	}
	t, err := NewTrainer(cfg, train, streams)
	if err != nil {
		return nil, err
	}
	if t.model.NumLayers() != st.NumLayer {
		return nil, fmt.Errorf("nn: checkpoint has %d layers, config builds %d",
			st.NumLayer, t.model.NumLayers())
	}
	if len(st.Order) != train.N() {
		return nil, fmt.Errorf("nn: checkpoint order length %d, dataset has %d",
			len(st.Order), train.N())
	}
	if cfg.Algo == Adam && len(st.SecW) != st.NumLayer {
		return nil, fmt.Errorf("nn: checkpoint lacks Adam state for Adam config")
	}
	for l := 0; l < st.NumLayer; l++ {
		if len(st.Weights[l]) != len(t.model.Weights[l].Data) {
			return nil, fmt.Errorf("nn: checkpoint layer %d shape mismatch", l)
		}
		copy(t.model.Weights[l].Data, st.Weights[l])
		copy(t.model.Biases[l], st.Biases[l])
		copy(t.optim.m.w[l].Data, st.MomW[l])
		copy(t.optim.m.b[l], st.MomB[l])
		if t.optim.v != nil && l < len(st.SecW) {
			copy(t.optim.v.w[l].Data, st.SecW[l])
			copy(t.optim.v.b[l], st.SecB[l])
		}
	}
	copy(t.order, st.Order)
	t.epoch = st.Epoch
	t.lr = st.LR
	t.optim.step = st.Step
	t.losses = append([]float64(nil), st.Losses...)
	return t, nil
}
