package nn

import (
	"testing"

	"varbench/internal/xrand"
)

func identicalModels(a, b *MLP) bool {
	for l := range a.Weights {
		for i := range a.Weights[l].Data {
			if a.Weights[l].Data[i] != b.Weights[l].Data[i] {
				return false
			}
		}
		for i := range a.Biases[l] {
			if a.Biases[l][i] != b.Biases[l][i] {
				return false
			}
		}
	}
	return true
}

func TestTrainerMatchesTrain(t *testing.T) {
	train := toyClassification(200, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Dropout = 0.2
	cfg.Epochs = 4

	ref, err := Train(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(cfg, train, xrand.NewStreams(42))
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	if !identicalModels(ref.Model, tr.Model()) {
		t.Fatal("Trainer diverged from Train")
	}
	res := tr.Result()
	if len(res.EpochLosses) != 4 {
		t.Fatalf("epoch losses = %d", len(res.EpochLosses))
	}
	for i := range res.EpochLosses {
		if res.EpochLosses[i] != ref.EpochLosses[i] {
			t.Fatal("loss trajectories differ")
		}
	}
}

func TestTrainerEpochAfterDone(t *testing.T) {
	train := toyClassification(50, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Epochs = 1
	tr, err := NewTrainer(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Epoch(); err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("should be done after 1 epoch")
	}
	if err := tr.Epoch(); err == nil {
		t.Fatal("Epoch after Done should error")
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	// The Appendix A protocol: for every possible interruption point,
	// training interrupted there and resumed must reproduce the
	// uninterrupted run bit for bit.
	train := toyClassification(150, 2)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Dropout = 0.15
	cfg.Augment = nil
	cfg.Epochs = 5

	ref, err := Train(cfg, train, xrand.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}

	for interrupt := 1; interrupt < cfg.Epochs; interrupt++ {
		tr, err := NewTrainer(cfg, train, xrand.NewStreams(7))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < interrupt; e++ {
			if err := tr.Epoch(); err != nil {
				t.Fatal(err)
			}
		}
		ckpt, err := tr.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ResumeTrainer(cfg, train, ckpt)
		if err != nil {
			t.Fatal(err)
		}
		for !resumed.Done() {
			if err := resumed.Epoch(); err != nil {
				t.Fatal(err)
			}
		}
		if !identicalModels(ref.Model, resumed.Model()) {
			t.Fatalf("resume after epoch %d diverged from straight run", interrupt)
		}
		losses := resumed.Result().EpochLosses
		for i := range ref.EpochLosses {
			if losses[i] != ref.EpochLosses[i] {
				t.Fatalf("resume after epoch %d: loss %d differs", interrupt, i)
			}
		}
	}
}

func TestInterleavedSeedsResume(t *testing.T) {
	// The exact Appendix A stress test: run trainings for several seeds,
	// interrupting each after every epoch and rotating through the seeds
	// before resuming — results must match uninterrupted runs.
	train := toyClassification(100, 3)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Epochs = 3
	seeds := []uint64{11, 22, 33}

	refs := map[uint64]*TrainResult{}
	for _, s := range seeds {
		r, err := Train(cfg, train, xrand.NewStreams(s))
		if err != nil {
			t.Fatal(err)
		}
		refs[s] = r
	}

	// Interleaved: keep a checkpoint per seed, advance one epoch at a time
	// in round-robin order.
	ckpts := map[uint64][]byte{}
	for _, s := range seeds {
		tr, err := NewTrainer(cfg, train, xrand.NewStreams(s))
		if err != nil {
			t.Fatal(err)
		}
		c, err := tr.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		ckpts[s] = c
	}
	for e := 0; e < cfg.Epochs; e++ {
		for _, s := range seeds {
			tr, err := ResumeTrainer(cfg, train, ckpts[s])
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Epoch(); err != nil {
				t.Fatal(err)
			}
			c, err := tr.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			ckpts[s] = c
		}
	}
	for _, s := range seeds {
		tr, err := ResumeTrainer(cfg, train, ckpts[s])
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Done() {
			t.Fatalf("seed %d not done after interleaved epochs", s)
		}
		if !identicalModels(refs[s].Model, tr.Model()) {
			t.Fatalf("seed %d: interleaved run diverged", s)
		}
	}
}

func TestResumeRejectsMismatches(t *testing.T) {
	train := toyClassification(60, 1)
	cfg := baseConfig(3, CrossEntropy)
	cfg.Epochs = 2
	tr, err := NewTrainer(cfg, train, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := tr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Garbage bytes.
	if _, err := ResumeTrainer(cfg, train, []byte("junk")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// Different architecture.
	badCfg := cfg
	badCfg.Hidden = []int{16, 16}
	if _, err := ResumeTrainer(badCfg, train, ckpt); err == nil {
		t.Error("architecture mismatch accepted")
	}
	// Different dataset size.
	if _, err := ResumeTrainer(cfg, toyClassification(61, 1), ckpt); err == nil {
		t.Error("dataset size mismatch accepted")
	}
	// Different layer width (same count): shape check.
	badCfg2 := cfg
	badCfg2.Hidden = []int{17}
	if _, err := ResumeTrainer(badCfg2, train, ckpt); err == nil {
		t.Error("layer width mismatch accepted")
	}
}
