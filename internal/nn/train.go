package nn

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"varbench/internal/augment"
	"varbench/internal/data"
	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// TrainConfig specifies one training run of an MLP. The stochastic elements
// — weight init, data order, dropout masks, augmentation — each consume a
// dedicated stream from the xrand.Streams passed to Train, so the benchmark
// can vary any single source of variation in isolation (Figure 1).
type TrainConfig struct {
	Hidden     []int       // hidden layer widths
	Activation Activation  //
	Loss       Loss        //
	OutDim     int         // output width (classes, or 1 for regression)
	Init       Initializer //
	Dropout    float64     // hidden dropout probability

	// Algo selects the update rule (SGD with momentum by default; Adam for
	// the BERT-style studies). Beta1/Beta2/AdamEps configure Adam and
	// default to 0.9 / 0.999 / 1e-8 (Table 3).
	Algo    Algo
	Beta1   float64
	Beta2   float64
	AdamEps float64

	LR          float64 // initial learning rate
	Momentum    float64 // SGD momentum coefficient
	WeightDecay float64 // L2 penalty coefficient
	LRDecay     float64 // per-epoch exponential decay γ (1 = constant)
	Epochs      int
	BatchSize   int

	Augment augment.Augmenter // nil disables augmentation

	// Reducer controls gradient accumulation across data-parallel shards.
	// ReduceNondeterministic reproduces GPU-style numerical noise; the
	// default ReduceSequential is bit-deterministic.
	Reducer tensor.Reducer
	// Shards is the number of data-parallel gradient shards per batch (only
	// meaningful for parallel reducers; 0 picks GOMAXPROCS capped at 4).
	Shards int
}

// Validate checks the configuration for obvious mistakes.
func (c *TrainConfig) Validate() error {
	if c.OutDim < 1 {
		return fmt.Errorf("nn: OutDim must be ≥ 1")
	}
	if c.LR <= 0 {
		return fmt.Errorf("nn: LR must be positive")
	}
	if c.Epochs < 1 || c.BatchSize < 1 {
		return fmt.Errorf("nn: Epochs and BatchSize must be ≥ 1")
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("nn: Dropout must be in [0, 1)")
	}
	if c.Init == nil {
		return fmt.Errorf("nn: Init must be set")
	}
	return nil
}

// TrainResult bundles the fitted model with its loss trajectory.
type TrainResult struct {
	Model       *MLP
	EpochLosses []float64
}

// Train fits an MLP on the training set. It is the concrete Opt(St, λ; ξO)
// of Equation 1: the hyperparameters live in cfg, the random sources ξO in
// streams. Train runs a Trainer to completion; use Trainer directly for
// checkpoint/resume (the Appendix A protocol).
func Train(cfg TrainConfig, train *data.Dataset, streams *xrand.Streams) (*TrainResult, error) {
	t, err := NewTrainer(cfg, train, streams)
	if err != nil {
		return nil, err
	}
	for !t.Done() {
		if err := t.Epoch(); err != nil {
			return nil, err
		}
	}
	return t.Result(), nil
}

// batchGradient computes the batch loss and gradient, optionally sharded for
// the data-parallel reducers. With ReduceNondeterministic the shard
// gradients are folded in completion order, producing realistic run-to-run
// floating-point noise even under fixed seeds.
func batchGradient(model *MLP, cfg TrainConfig, xb *tensor.Matrix, yb []float64,
	dropoutRng *xrand.Source) (float64, *gradients) {
	if cfg.Reducer == tensor.ReduceSequential || xb.Rows < 8 {
		return model.lossAndGrad(xb, yb, dropoutStream(model, dropoutRng))
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 4 {
			shards = 4
		}
	}
	if shards > xb.Rows {
		shards = xb.Rows
	}
	// Pre-draw independent dropout seeds per shard so the sharded run is
	// seed-reproducible regardless of scheduling.
	type shardOut struct {
		id     int
		loss   float64
		grad   *gradients
		weight float64
	}
	chunk := (xb.Rows + shards - 1) / shards
	outs := make(chan shardOut, shards)
	var wg sync.WaitGroup
	launched := 0
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > xb.Rows {
			hi = xb.Rows
		}
		if lo >= hi {
			continue
		}
		var shardDrop *xrand.Source
		if model.Dropout > 0 && dropoutRng != nil {
			shardDrop = xrand.New(dropoutRng.Uint64())
		}
		id := launched
		launched++
		wg.Add(1)
		go func(id, lo, hi int, drop *xrand.Source) {
			defer wg.Done()
			sub := tensor.NewMatrix(hi-lo, xb.Cols)
			copy(sub.Data, xb.Data[lo*xb.Cols:hi*xb.Cols])
			loss, grad := model.lossAndGrad(sub, yb[lo:hi], drop)
			outs <- shardOut{id: id, loss: loss, grad: grad, weight: float64(hi - lo)}
		}(id, lo, hi, shardDrop)
	}
	wg.Wait()
	close(outs)

	var total *gradients
	loss, weight := 0.0, 0.0
	if cfg.Reducer == tensor.ReduceNondeterministic {
		// Fold in completion order (channel order): the FP rounding of the
		// fold depends on goroutine scheduling, like GPU atomics.
		for o := range outs {
			foldShard(&total, &loss, &weight, o.loss, o.grad, o.weight)
		}
	} else {
		// Deterministic parallel: fold in shard-id order.
		collected := make([]shardOut, launched)
		for o := range outs {
			collected[o.id] = o
		}
		for _, o := range collected {
			foldShard(&total, &loss, &weight, o.loss, o.grad, o.weight)
		}
	}
	loss /= weight
	scale := 1 / weight
	for l := range total.w {
		total.w[l].Scale(scale)
		tensor.Scale(scale, total.b[l])
	}
	return loss, total
}

func foldShard(total **gradients, loss, weight *float64, shardLoss float64,
	grad *gradients, shardWeight float64) {
	// Convert mean-gradients back to sum-gradients via the shard weight so
	// shards of unequal size combine correctly.
	for l := range grad.w {
		grad.w[l].Scale(shardWeight)
		tensor.Scale(shardWeight, grad.b[l])
	}
	*loss += shardLoss * shardWeight
	*weight += shardWeight
	if *total == nil {
		*total = grad
		return
	}
	(*total).add(grad)
}

func dropoutStream(model *MLP, rng *xrand.Source) *xrand.Source {
	if model.Dropout <= 0 {
		return nil
	}
	return rng
}

// applySGD performs one SGD-with-momentum update:
// v ← μ·v − lr·(g + wd·θ); θ ← θ + v.
func applySGD(model *MLP, velocity, grad *gradients, lr, momentum, weightDecay float64) {
	for l := range model.Weights {
		w := model.Weights[l]
		v := velocity.w[l]
		g := grad.w[l]
		for i := range w.Data {
			v.Data[i] = momentum*v.Data[i] - lr*(g.Data[i]+weightDecay*w.Data[i])
			w.Data[i] += v.Data[i]
		}
		bv := velocity.b[l]
		bg := grad.b[l]
		b := model.Biases[l]
		for i := range b {
			bv[i] = momentum*bv[i] - lr*bg[i]
			b[i] += bv[i]
		}
	}
}

// EvalLoss computes the mean loss of the model on a dataset (no dropout).
func EvalLoss(model *MLP, d *data.Dataset) float64 {
	loss, _ := model.lossAndGrad(d.X, d.Y, nil)
	return loss
}

// GradCheck compares analytic gradients against central finite differences
// on a small model; exported for tests and diagnostics. Returns the maximum
// relative error over a sample of nProbe parameters.
func GradCheck(model *MLP, x *tensor.Matrix, y []float64, nProbe int, r *xrand.Source) float64 {
	const eps = 1e-6
	_, grad := model.lossAndGrad(x, y, nil)
	maxErr := 0.0
	for p := 0; p < nProbe; p++ {
		l := r.Intn(model.NumLayers())
		i := r.Intn(len(model.Weights[l].Data))
		orig := model.Weights[l].Data[i]
		model.Weights[l].Data[i] = orig + eps
		lossPlus, _ := model.lossAndGrad(x, y, nil)
		model.Weights[l].Data[i] = orig - eps
		lossMinus, _ := model.lossAndGrad(x, y, nil)
		model.Weights[l].Data[i] = orig
		numeric := (lossPlus - lossMinus) / (2 * eps)
		analytic := grad.w[l].Data[i]
		denom := math.Max(1e-8, math.Abs(numeric)+math.Abs(analytic))
		err := math.Abs(numeric-analytic) / denom
		if err > maxErr {
			maxErr = err
		}
	}
	return maxErr
}
