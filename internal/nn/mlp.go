package nn

import (
	"fmt"
	"math"

	"varbench/internal/tensor"
	"varbench/internal/xrand"
)

// Activation selects the hidden non-linearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
)

// Loss selects the training objective.
type Loss int

const (
	// CrossEntropy is softmax cross-entropy over class logits.
	CrossEntropy Loss = iota
	// MSELoss is mean squared error for regression.
	MSELoss
)

// MLP is a fully connected network with one output layer and zero or more
// hidden layers. Weights[l] has shape in_l × out_l; Biases[l] has length
// out_l.
type MLP struct {
	Weights    []*tensor.Matrix
	Biases     [][]float64
	Activation Activation
	Loss       Loss
	Dropout    float64 // hidden-layer dropout probability
}

// NewMLP builds a network with the given layer sizes (input, hidden...,
// output) and initializes all weights from init using the weight stream r.
// Biases start at zero, like the PyTorch defaults used in the paper.
func NewMLP(sizes []int, act Activation, loss Loss, dropout float64,
	init Initializer, r *xrand.Source) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes, got %v", sizes)
	}
	m := &MLP{Activation: act, Loss: loss, Dropout: dropout}
	for l := 0; l+1 < len(sizes); l++ {
		w := tensor.NewMatrix(sizes[l], sizes[l+1])
		init.Init(w, r)
		m.Weights = append(m.Weights, w)
		m.Biases = append(m.Biases, make([]float64, sizes[l+1]))
	}
	return m, nil
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{Activation: m.Activation, Loss: m.Loss, Dropout: m.Dropout}
	for l := range m.Weights {
		c.Weights = append(c.Weights, m.Weights[l].Clone())
		c.Biases = append(c.Biases, append([]float64(nil), m.Biases[l]...))
	}
	return c
}

// NumLayers returns the number of weight layers.
func (m *MLP) NumLayers() int { return len(m.Weights) }

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.Weights {
		n += len(m.Weights[l].Data) + len(m.Biases[l])
	}
	return n
}

// forwardCache stores per-layer values needed for backpropagation.
type forwardCache struct {
	inputs  []*tensor.Matrix // input to each layer (post-dropout of previous)
	acts    []*tensor.Matrix // post-activation, pre-dropout hidden values
	masks   []*tensor.Matrix // dropout masks (nil when not applied)
	outputs *tensor.Matrix   // final raw outputs (logits / regression values)
}

// Forward computes raw outputs (logits for classification, values for
// regression) in inference mode: no dropout.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	cache := m.forward(x, nil)
	return cache.outputs
}

// forward runs the network; if dropoutRng is non-nil, dropout masks are
// sampled (training mode, inverted dropout scaling 1/(1-p)).
func (m *MLP) forward(x *tensor.Matrix, dropoutRng *xrand.Source) *forwardCache {
	cache := &forwardCache{}
	h := x
	for l := 0; l < m.NumLayers(); l++ {
		cache.inputs = append(cache.inputs, h)
		z := tensor.MatMul(h, m.Weights[l])
		for i := 0; i < z.Rows; i++ {
			row := z.Row(i)
			for j := range row {
				row[j] += m.Biases[l][j]
			}
		}
		if l == m.NumLayers()-1 {
			cache.masks = append(cache.masks, nil)
			cache.outputs = z
			break
		}
		switch m.Activation {
		case ReLU:
			z.Apply(func(v float64) float64 {
				if v < 0 {
					return 0
				}
				return v
			})
		case Tanh:
			z.Apply(math.Tanh)
		}
		if dropoutRng != nil && m.Dropout > 0 {
			cache.acts = append(cache.acts, z.Clone())
			mask := tensor.NewMatrix(z.Rows, z.Cols)
			keep := 1 - m.Dropout
			for i := range mask.Data {
				if dropoutRng.Float64() < keep {
					mask.Data[i] = 1 / keep
				}
			}
			for i := range z.Data {
				z.Data[i] *= mask.Data[i]
			}
			cache.masks = append(cache.masks, mask)
		} else {
			cache.acts = append(cache.acts, z)
			cache.masks = append(cache.masks, nil)
		}
		h = z
	}
	return cache
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	p := logits.Clone()
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return p
}

// gradients holds parameter gradients matching the MLP layout.
type gradients struct {
	w []*tensor.Matrix
	b [][]float64
}

func newGradients(m *MLP) *gradients {
	g := &gradients{}
	for l := range m.Weights {
		g.w = append(g.w, tensor.NewMatrix(m.Weights[l].Rows, m.Weights[l].Cols))
		g.b = append(g.b, make([]float64, len(m.Biases[l])))
	}
	return g
}

func (g *gradients) add(o *gradients) {
	for l := range g.w {
		g.w[l].Add(o.w[l])
		tensor.Axpy(1, o.b[l], g.b[l])
	}
}

// lossAndGrad computes the mean loss over the batch and the parameter
// gradients, given targets y (class indices for CrossEntropy, real values
// for MSELoss).
func (m *MLP) lossAndGrad(x *tensor.Matrix, y []float64, dropoutRng *xrand.Source) (float64, *gradients) {
	cache := m.forward(x, dropoutRng)
	n := float64(x.Rows)
	out := cache.outputs

	// delta = dLoss/dLogits.
	var loss float64
	delta := tensor.NewMatrix(out.Rows, out.Cols)
	switch m.Loss {
	case CrossEntropy:
		probs := Softmax(out)
		for i := 0; i < out.Rows; i++ {
			c := int(y[i])
			p := probs.At(i, c)
			if p < 1e-12 {
				p = 1e-12
			}
			loss -= math.Log(p)
			prow := probs.Row(i)
			drow := delta.Row(i)
			for j := range drow {
				drow[j] = prow[j] / n
			}
			drow[c] -= 1 / n
		}
		loss /= n
	case MSELoss:
		for i := 0; i < out.Rows; i++ {
			d := out.At(i, 0) - y[i]
			loss += d * d
			delta.Set(i, 0, 2*d/n)
		}
		loss /= n
	}

	g := newGradients(m)
	for l := m.NumLayers() - 1; l >= 0; l-- {
		in := cache.inputs[l]
		// dW = inᵀ·delta ; db = column sums of delta.
		g.w[l] = tensor.TMatMul(in, delta)
		for i := 0; i < delta.Rows; i++ {
			row := delta.Row(i)
			for j, v := range row {
				g.b[l][j] += v
			}
		}
		if l == 0 {
			break
		}
		// Propagate: dIn = delta·Wᵀ, back through dropout, then through the
		// activation using the pre-dropout activation values.
		back := tensor.MatMulT(delta, m.Weights[l])
		if mask := cache.masks[l-1]; mask != nil {
			for i := range back.Data {
				back.Data[i] *= mask.Data[i]
			}
		}
		switch m.Activation {
		case ReLU:
			for i, v := range cache.acts[l-1].Data {
				if v <= 0 {
					back.Data[i] = 0
				}
			}
		case Tanh:
			for i, v := range cache.acts[l-1].Data {
				back.Data[i] *= 1 - v*v
			}
		}
		delta = back
	}
	return loss, g
}

// PredictLabels returns argmax class predictions for classification models.
func (m *MLP) PredictLabels(x *tensor.Matrix) []int {
	out := m.Forward(x)
	labels := make([]int, out.Rows)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		labels[i] = best
	}
	return labels
}

// PredictValues returns scalar predictions for regression models.
func (m *MLP) PredictValues(x *tensor.Matrix) []float64 {
	out := m.Forward(x)
	vals := make([]float64, out.Rows)
	for i := range vals {
		vals[i] = out.At(i, 0)
	}
	return vals
}
