package pipeline_test

import (
	"testing"

	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

func TestBudgetedObjectiveContinuesTraining(t *testing.T) {
	task := casestudy.Tiny(1)
	streams := xrand.NewStreams(1)
	split, err := task.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	obj := pipeline.BudgetedObjective(task, split, streams)
	p := task.Defaults()
	// More budget should (usually) not hurt on this easy task; mainly we
	// check that increasing budgets work and re-queries are cheap and
	// consistent.
	e2 := obj(p, 2)
	e6 := obj(p, 6)
	e6again := obj(p, 6) // cached: no extra epochs, same value
	if e6 != e6again {
		t.Errorf("cached budgeted objective changed: %v vs %v", e6, e6again)
	}
	if e2 < 0 || e2 > 1 || e6 < 0 || e6 > 1 {
		t.Errorf("errors out of range: %v %v", e2, e6)
	}
	if e6 > e2+0.15 {
		t.Errorf("training longer made things much worse: %v → %v", e2, e6)
	}
	// Bad params yield the error sentinel 1.
	if v := obj(hpo.Params{}, 2); v != 1 {
		t.Errorf("invalid params should score 1, got %v", v)
	}
}

func TestSHAOverPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	task := casestudy.Tiny(1)
	streams := xrand.NewStreams(2)
	split, err := task.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	obj := pipeline.BudgetedObjective(task, split, streams)
	sha := hpo.SuccessiveHalving{Eta: 3, MinBudget: 1, MaxBudget: 9}
	hist, err := sha.Optimize(obj, task.Space(), 9, streams.Get(xrand.VarHOpt))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := hist.Best()
	if !ok {
		t.Fatal("no SHA result")
	}
	if best.Value > 0.5 {
		t.Errorf("SHA-selected config has validation error %v, want < 0.5", best.Value)
	}
	// Continuation-based SHA trains each unique config at most MaxBudget
	// epochs; with restarts it would be rung sums. Just assert the history
	// has the right rung structure.
	if hist.TotalBudget() != 9*1+3*3+1*9 {
		t.Errorf("unexpected total budget %d", hist.TotalBudget())
	}
}
