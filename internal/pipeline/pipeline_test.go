package pipeline_test

import (
	"testing"

	"varbench/internal/casestudy"
	"varbench/internal/hpo"
	"varbench/internal/pipeline"
	"varbench/internal/xrand"
)

func TestRunCompletePipeline(t *testing.T) {
	task := casestudy.Tiny(1)
	res, err := pipeline.Run(task, hpo.RandomSearch{}, 5, xrand.NewStreams(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.TestPerf < 0.4 || res.TestPerf > 1 {
		t.Errorf("test perf = %v", res.TestPerf)
	}
	if len(res.HOpt.History) != 5 {
		t.Errorf("HOpt history length = %d, want 5", len(res.HOpt.History))
	}
	if len(res.HOpt.TestCurve) != 5 {
		t.Errorf("test curve length = %d, want 5", len(res.HOpt.TestCurve))
	}
	if res.Params == nil {
		t.Error("missing selected hyperparameters")
	}
	for _, d := range task.Space() {
		if _, ok := res.Params[d.Name]; !ok {
			t.Errorf("selected params missing %s", d.Name)
		}
	}
}

func TestRunDeterministicGivenStreams(t *testing.T) {
	task := casestudy.Tiny(1)
	a, err := pipeline.Run(task, hpo.RandomSearch{}, 4, xrand.NewStreams(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Run(task, hpo.RandomSearch{}, 4, xrand.NewStreams(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.TestPerf != b.TestPerf || a.ValidPerf != b.ValidPerf {
		t.Errorf("pipeline not reproducible: %v vs %v", a.TestPerf, b.TestPerf)
	}
}

func TestHOptSelectsBestValidTrial(t *testing.T) {
	task := casestudy.Tiny(1)
	streams := xrand.NewStreams(5)
	split, err := task.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.HOpt(task, hpo.RandomSearch{}, 6, split, streams)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.History.Best()
	for _, tr := range res.History {
		if tr.Value < best.Value {
			t.Error("Best is not the minimum of the history")
		}
	}
	for name, v := range best.Params {
		if res.Best[name] != v {
			t.Error("returned Best params mismatch history best")
		}
	}
}

func TestHOptReproducibleAndXiHIsolated(t *testing.T) {
	task := casestudy.Tiny(1)
	streams := xrand.NewStreams(7)
	split, err := task.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		t.Fatal(err)
	}
	a, err := pipeline.HOpt(task, hpo.RandomSearch{}, 4, split, streams.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.HOpt(task, hpo.RandomSearch{}, 4, split, streams.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.History {
		if a.History[i].Value != b.History[i].Value {
			t.Fatal("HOpt not reproducible under identical streams")
		}
	}
	// Reseeding only ξH changes the search trajectory.
	altStreams := streams.Clone()
	altStreams.Reseed(xrand.VarHOpt, 12345)
	c, err := pipeline.HOpt(task, hpo.RandomSearch{}, 4, split, altStreams)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.History {
		if a.History[i].Value != c.History[i].Value {
			same = false
			break
		}
	}
	if same {
		t.Error("reseeding ξH did not change the HOpt trajectory")
	}
}

func TestRunWithParamsVariesWithDataSeed(t *testing.T) {
	task := casestudy.Tiny(1)
	p := task.Defaults()
	a, err := pipeline.RunWithParams(task, p, xrand.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	s2 := xrand.NewStreams(1)
	s2.Reseed(xrand.VarDataSplit, 999)
	b, err := pipeline.RunWithParams(task, p, s2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different data splits gave bit-identical performance (suspicious)")
	}
}

func TestFitRespectsBuildErrors(t *testing.T) {
	task := casestudy.Tiny(1)
	if _, err := pipeline.Fit(task, hpo.Params{}, nil, xrand.NewStreams(1)); err == nil {
		t.Error("empty params should propagate Build error")
	}
}
