package pipeline

import (
	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/nn"
	"varbench/internal/xrand"
)

// BudgetedObjective builds an hpo.BudgetedObjective for a task and a fixed
// replication, where budget counts training epochs. A Trainer is cached per
// configuration, so successive-halving rungs *continue* training from the
// previous rung's checkpointed state instead of restarting — the efficient
// SHA implementation enabled by the resumable trainer. Every configuration
// trains under the same ξO (cloned streams), mirroring HOpt's isolation.
func BudgetedObjective(t Task, split data.TrainValidTest, streams *xrand.Streams) hpo.BudgetedObjective {
	type entry struct {
		trainer *nn.Trainer
		epochs  int
	}
	cache := map[string]*entry{}
	return func(p hpo.Params, budget int) float64 {
		key := p.String()
		e, ok := cache[key]
		if !ok {
			cfg, err := t.Build(p)
			if err != nil {
				return 1
			}
			cfg.Epochs = 1 << 30 // epochs governed by the rung budget
			trainer, err := nn.NewTrainer(cfg, split.Train, streams.Clone())
			if err != nil {
				return 1
			}
			e = &entry{trainer: trainer}
			cache[key] = e
		}
		for e.epochs < budget {
			if err := e.trainer.Epoch(); err != nil {
				return 1
			}
			e.epochs++
		}
		return 1 - t.Measure(e.trainer.Model(), split.Valid)
	}
}
