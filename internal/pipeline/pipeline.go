// Package pipeline implements the paper's formal model of a learning
// pipeline (Section 2.1): the training procedure Opt(St, λ; ξO) of Equation
// 1, the hyperparameter optimization HOpt(Stv; ξO, ξH) of Equation 2, and
// the complete pipeline P(Stv) = Opt(Stv, HOpt(Stv)) of Equation 3, with all
// sources of variation ξ = ξO ∪ ξH drawn from named xrand streams.
package pipeline

import (
	"fmt"

	"varbench/internal/data"
	"varbench/internal/hpo"
	"varbench/internal/nn"
	"varbench/internal/xrand"
)

// Task defines one benchmark problem: how to draw a benchmark replication
// from the finite dataset, how hyperparameters map to a training
// configuration, and how performance is measured. Performance is always
// "higher is better" (accuracy, mIoU, AUC); optimization objectives negate
// it internally.
type Task interface {
	Name() string
	// Split draws one (train, valid, test) replication using the stream r
	// (the data-split source of variation).
	Split(r *xrand.Source) (data.TrainValidTest, error)
	// Space returns the hyperparameter search space (Tables 2/3/5/6).
	Space() hpo.Space
	// Defaults returns the pre-selected reasonable hyperparameters used for
	// the variance study (Appendix D).
	Defaults() hpo.Params
	// Build maps hyperparameters to a concrete training configuration.
	Build(p hpo.Params) (nn.TrainConfig, error)
	// Measure evaluates a trained model on a dataset (higher is better).
	Measure(m *nn.MLP, d *data.Dataset) float64
}

// Fit is Opt(St, λ; ξO): it trains a model on train with hyperparameters p,
// drawing all stochastic elements from streams.
func Fit(t Task, p hpo.Params, train *data.Dataset, streams *xrand.Streams) (*nn.MLP, error) {
	cfg, err := t.Build(p)
	if err != nil {
		return nil, err
	}
	res, err := nn.Train(cfg, train, streams)
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}

// TrainEval is Opt followed by evaluation: it trains with hyperparameters p
// under the ξO streams and returns performance on the eval set.
func TrainEval(t Task, p hpo.Params, train, eval *data.Dataset, streams *xrand.Streams) (float64, error) {
	model, err := Fit(t, p, train, streams)
	if err != nil {
		return 0, err
	}
	return t.Measure(model, eval), nil
}

// HOptResult is the outcome of one hyperparameter optimization.
type HOptResult struct {
	Best    hpo.Params
	History hpo.History // trial values are validation errors (1 - performance)
	// TestCurve holds the test performance of each trial's model, recorded
	// for the optimization curves of Figure F.2. Entries align with History.
	TestCurve []float64
}

// HOpt runs the hyperparameter optimization of Equation 2 on a fixed
// replication: every trial trains on split.Train with the *same* ξO
// (cloned streams) and is scored on split.Valid; the optimizer's own
// randomness ξH comes from the VarHOpt stream. This isolation is exactly how
// the paper measures HOpt variance (Section 2.2).
func HOpt(t Task, opt hpo.Optimizer, budget int, split data.TrainValidTest,
	streams *xrand.Streams) (HOptResult, error) {
	var testCurve []float64
	var trialErr error
	objective := func(p hpo.Params) float64 {
		trialStreams := streams.Clone() // same ξO for every trial
		model, err := Fit(t, p, split.Train, trialStreams)
		if err != nil {
			trialErr = err
			return 1
		}
		validPerf := t.Measure(model, split.Valid)
		// Score the same model on test for the Figure F.2 curves.
		testCurve = append(testCurve, t.Measure(model, split.Test))
		return 1 - validPerf
	}
	hist, err := opt.Optimize(objective, t.Space(), budget, streams.Get(xrand.VarHOpt))
	if err != nil {
		return HOptResult{}, err
	}
	if trialErr != nil {
		return HOptResult{}, trialErr
	}
	best, ok := hist.Best()
	if !ok {
		return HOptResult{}, fmt.Errorf("pipeline: empty HOpt history")
	}
	return HOptResult{Best: best.Params, History: hist, TestCurve: testCurve}, nil
}

// Result is the outcome of one complete pipeline execution.
type Result struct {
	Params    hpo.Params
	ValidPerf float64
	TestPerf  float64
	HOpt      HOptResult
}

// Run executes the complete pipeline P of Equation 3: draw a replication
// with the data-split stream, optimize hyperparameters, retrain on the full
// Stv = train ∪ valid, and measure on the held-out test set.
func Run(t Task, opt hpo.Optimizer, budget int, streams *xrand.Streams) (Result, error) {
	split, err := t.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		return Result{}, err
	}
	hres, err := HOpt(t, opt, budget, split, streams)
	if err != nil {
		return Result{}, err
	}
	stv, err := data.Concat(split.Train, split.Valid)
	if err != nil {
		return Result{}, err
	}
	finalStreams := streams.Clone()
	cfg, err := t.Build(hres.Best)
	if err != nil {
		return Result{}, err
	}
	trained, err := nn.Train(cfg, stv, finalStreams)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Params:    hres.Best,
		ValidPerf: t.Measure(trained.Model, split.Valid),
		TestPerf:  t.Measure(trained.Model, split.Test),
		HOpt:      hres,
	}, nil
}

// RunWithParams executes the pipeline with fixed hyperparameters (no HOpt):
// the inner loop of the biased estimator FixHOptEst (Algorithm 2). It draws
// a fresh replication from the data-split stream, trains on Stv and
// measures on the test set.
func RunWithParams(t Task, p hpo.Params, streams *xrand.Streams) (float64, error) {
	split, err := t.Split(streams.Get(xrand.VarDataSplit))
	if err != nil {
		return 0, err
	}
	stv, err := data.Concat(split.Train, split.Valid)
	if err != nil {
		return 0, err
	}
	return TrainEval(t, p, stv, split.Test, streams)
}
