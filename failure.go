package varbench

import (
	"errors"
	"fmt"
	"io"

	"varbench/internal/jsonx"
)

// FailureKind classifies why a trial was quarantined, mirroring the
// sentinel taxonomy of retry.go.
type FailureKind string

// The failure kinds.
const (
	// FailureError: the pipeline (or its store write) returned an error.
	FailureError FailureKind = "error"
	// FailureTimeout: the pipeline exceeded Experiment.TrialTimeout.
	FailureTimeout FailureKind = "timeout"
	// FailurePanic: the pipeline panicked and was recovered.
	FailurePanic FailureKind = "panic"
)

// failureKindOf maps a final trial error onto its kind via the sentinels.
func failureKindOf(err error) FailureKind {
	switch {
	case errors.Is(err, ErrTrialTimeout):
		return FailureTimeout
	case errors.Is(err, ErrTrialPanic):
		return FailurePanic
	default:
		return FailureError
	}
}

// A TrialFailure describes one quarantined trial cell: a (trial, side)
// measurement that exhausted its attempts in a non-FailFast run. Quarantined
// cells are excluded from the analysis (the pair is dropped) and recorded
// durably in the store under failure/... keys; re-running the experiment
// with the same store retries them, so a degraded run converges to the
// clean result on resume.
type TrialFailure struct {
	// Dataset is the dataset name for experiments ("" when unnamed), or the
	// report row label ("joint", a source name) for variance studies.
	Dataset string `json:"dataset,omitempty"`
	// Realization is the 1-based study realization the failure belongs to;
	// only set by VarianceStudy runs (0 for experiments).
	Realization int `json:"realization,omitempty"`
	// Index is the trial index within its collection stream.
	Index int `json:"index"`
	// Side is "A" or "B" for paired experiments, "A" for single-pipeline
	// collections.
	Side string `json:"side,omitempty"`
	// Kind classifies the final error.
	Kind FailureKind `json:"kind"`
	// Err is the final attempt's error text.
	Err string `json:"error"`
	// Attempts is the number of attempts consumed, first try included.
	Attempts int `json:"attempts"`
}

// MarshalJSON implements json.Marshaler through jsonx for consistency with
// every other report type (see the package note in result.go).
func (f TrialFailure) MarshalJSON() ([]byte, error) {
	type alias TrialFailure
	return jsonx.Marshal(alias(f))
}

// String renders the failure in one line, as the text renderers print it.
func (f TrialFailure) String() string {
	where := ""
	if f.Dataset != "" {
		where = f.Dataset + " "
	}
	if f.Realization > 0 {
		where += fmt.Sprintf("realization %d ", f.Realization)
	}
	side := f.Side
	if side == "" {
		side = "A"
	}
	return fmt.Sprintf("%strial %d side %s: %s after %d attempt(s): %s",
		where, f.Index, side, f.Kind, f.Attempts, f.Err)
}

// renderFailuresText writes the failure-summary section shared by the text
// renderers: a count line followed by one indented line per quarantined
// trial, supplied by the iterator. Nothing is written when count is 0.
func renderFailuresText(w io.Writer, count int, each func(yield func(TrialFailure) error) error) error {
	if count == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "quarantined: %d trial(s) — excluded from the analysis; rerun with the same store to retry them\n", count); err != nil {
		return err
	}
	return each(func(f TrialFailure) error {
		_, err := fmt.Fprintf(w, "  %s\n", f.String())
		return err
	})
}

// failureRecord is the JSON payload stored under store.FailureKey: the full
// attempt history of one quarantined cell, kept for audit. It is
// last-record-wins like every store cell; a later successful resume leaves
// the record in place (the trial key then serves the score) — failure
// records are never read back as results.
type failureRecord struct {
	Kind     FailureKind     `json:"kind"`
	Error    string          `json:"error"`
	Attempts []attemptRecord `json:"attempts"`
}

// attemptRecord is one entry of a failureRecord's history.
type attemptRecord struct {
	// Attempt is 1-based.
	Attempt int `json:"attempt"`
	// Error is the attempt's error text.
	Error string `json:"error"`
	// BackoffNS is the deterministic pause scheduled after this attempt
	// (0 for the final attempt).
	BackoffNS int64 `json:"backoff_ns,omitempty"`
}
