package varbench

import (
	"context"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"varbench/internal/stats"
)

// TestTrialStreamMatchesHistoricalSeeds pins the lazy trial stream to the
// seed sequence of the historical eager makeTrials (captured from the
// pre-stream implementation), so experiments keep reproducing bit-for-bit
// across the refactor. The golden values cover the vary-all default, a
// restricted Sources set on a named dataset, and a custom source label.
func TestTrialStreamMatchesHistoricalSeeds(t *testing.T) {
	type goldenTrial struct {
		seed uint64
		src  map[Source]uint64
	}
	check := func(name string, e Experiment, dataset string, want []goldenTrial) {
		t.Helper()
		cfg, err := e.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		// Stream taken in uneven slices to exercise batch boundaries.
		stream := cfg.trialStream(dataset)
		var trials []Trial
		for len(trials) < len(want) {
			n := min(2, len(want)-len(trials))
			trials = stream.take(trials, n)
		}
		// The eager wrapper must agree with the stream.
		eager := cfg.makeTrials(dataset)
		for i, w := range want {
			if trials[i].Index != i || trials[i].Seed != w.seed {
				t.Errorf("%s trial %d: seed %#x, want %#x", name, i, trials[i].Seed, w.seed)
			}
			if eager[i].Seed != w.seed {
				t.Errorf("%s makeTrials %d: seed %#x, want %#x", name, i, eager[i].Seed, w.seed)
			}
			for s, seed := range w.src {
				if got := trials[i].SourceSeed(s); got != seed {
					t.Errorf("%s trial %d source %s: %#x, want %#x", name, i, s, got, seed)
				}
			}
		}
	}

	check("vary-all", Experiment{Seed: 7, MaxRuns: 6}, "", []goldenTrial{
		{0xb358faf74ef9765a, map[Source]uint64{VarInit: 0x7f8441ab1e2c0515, VarHOpt: 0x479d06dcd2a601b2}},
		{0x475c3d964f482cd2, map[Source]uint64{VarInit: 0x0e0dde01ccc62106, VarHOpt: 0x1d150ef6212c2cd2}},
		{0xd6f1d349952c7996, map[Source]uint64{VarInit: 0x2361fe26ac8cebbf, VarHOpt: 0x440c7edf5acfbaab}},
		{0xfb2938731e807240, map[Source]uint64{VarInit: 0x44f00f897853817d, VarHOpt: 0xd3fd92a75dad9df1}},
		{0xfda904ec7e540318, map[Source]uint64{VarInit: 0xfd783fdaf9b6f16a, VarHOpt: 0x47c23c8bd55b1fd4}},
		{0xdf6e1ce3b6218c49, map[Source]uint64{VarInit: 0x6b95df50daac899f, VarHOpt: 0xe4dc1dbeb1e7e7b3}},
	})

	custom := Source("custom")
	check("restricted named", Experiment{Seed: 5, MaxRuns: 4, Sources: []Source{VarInit}}, "d1", []goldenTrial{
		{0x4c21188013e4a477, map[Source]uint64{VarInit: 0x445c34dbc5390d90, VarOrder: 0x02c796c481e52b0f, custom: 0x812f3db910aacb93}},
		{0xdf10c397715b2cb6, map[Source]uint64{VarInit: 0xf85254d732c6c856, VarOrder: 0x02c796c481e52b0f, custom: 0x812f3db910aacb93}},
		{0x86455f2dd81af374, map[Source]uint64{VarInit: 0xaa0fc6269e56f1b7, VarOrder: 0x02c796c481e52b0f, custom: 0x812f3db910aacb93}},
		{0x9a987191a624a944, map[Source]uint64{VarInit: 0x132779545626a0f7, VarOrder: 0x02c796c481e52b0f, custom: 0x812f3db910aacb93}},
	})

	noise := Source("my-noise")
	check("custom source", Experiment{Seed: 11, MaxRuns: 3, Sources: []Source{noise}}, "", []goldenTrial{
		{0x39287fc26939a7df, map[Source]uint64{noise: 0x2bc55b378a048879, VarDataSplit: 0x3a89676c6ea7c16a}},
		{0x1654fe5f5c55a081, map[Source]uint64{noise: 0x8eb7204694a884d1, VarDataSplit: 0x3a89676c6ea7c16a}},
		{0x3ec96828463614ad, map[Source]uint64{noise: 0x0e074c93138add6b, VarDataSplit: 0x3a89676c6ea7c16a}},
	})
}

// TestRunAnalysisParallelismGrid proves bit-identical results across the
// full {collection workers} × {bootstrap shard workers} grid, the
// determinism contract of the parallel analysis engine.
func TestRunAnalysisParallelismGrid(t *testing.T) {
	spec := Experiment{
		A:       noisyRunner(0.85),
		B:       noisyRunner(0.83),
		Seed:    7,
		MaxRuns: 48,
	}
	workerGrid := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref *Result
	for _, collect := range workerGrid {
		for _, analysis := range workerGrid {
			e := spec
			e.Parallelism = collect
			e.AnalysisParallelism = analysis
			res, err := e.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			res.Elapsed = 0 // wall-clock, legitimately varies
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("collect=%d analysis=%d diverged:\n %+v\n %+v",
					collect, analysis, res.Comparison, ref.Comparison)
			}
		}
	}
}

func TestAnalyzeAnalysisParallelismInvariance(t *testing.T) {
	ds := syntheticDatasets(5, 1, 25, 0.3)
	ref, err := Analyze(ds[0].ScoresA, ds[0].ScoresB, WithSeed(3), WithAnalysisParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		res, err := Analyze(ds[0].ScoresA, ds[0].ScoresB, WithSeed(3), WithAnalysisParallelism(w))
		if err != nil {
			t.Fatal(err)
		}
		if res.Comparison != ref.Comparison {
			t.Errorf("workers=%d: %+v != %+v", w, res.Comparison, ref.Comparison)
		}
	}
	// Unpaired path too.
	refU, err := Analyze(ds[0].ScoresA, ds[0].ScoresB[:20], WithUnpaired(), WithSeed(3), WithAnalysisParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	resU, err := Analyze(ds[0].ScoresA, ds[0].ScoresB[:20], WithUnpaired(), WithSeed(3), WithAnalysisParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if resU.Comparison != refU.Comparison {
		t.Errorf("unpaired: %+v != %+v", resU.Comparison, refU.Comparison)
	}
}

func TestAnalyzeDatasetsAnalysisParallelismInvariance(t *testing.T) {
	ds := syntheticDatasets(9, 4, 25, 0.4)
	ref, err := AnalyzeDatasets(ds, WithSeed(5), WithAnalysisParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeDatasets(ds, WithSeed(5), WithAnalysisParallelism(runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Datasets, res.Datasets) {
		t.Error("AnalyzeDatasets differs across analysis parallelism")
	}
}

// TestRunMultiDatasetProgressSerialized exercises the concurrent
// multi-dataset collection path under the race detector: the Progress
// callback appends to a plain slice with no synchronization, which is only
// safe because Run funnels all callbacks through one delivery goroutine.
func TestRunMultiDatasetProgressSerialized(t *testing.T) {
	var events []Progress // deliberately unsynchronized
	e := Experiment{
		Datasets: []Dataset{
			{Name: "d1", A: noisyRunner(0.9), B: noisyRunner(0.7)},
			{Name: "d2", A: noisyRunner(0.8), B: noisyRunner(0.6)},
			{Name: "d3", A: noisyRunner(0.7), B: noisyRunner(0.5)},
			{Name: "d4", A: noisyRunner(0.6), B: noisyRunner(0.4)},
		},
		MaxRuns:   24,
		BatchSize: 8,
		EarlyStop: EarlyStopOff,
		Progress:  func(p Progress) { events = append(events, p) },
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 3; len(events) != want { // 4 datasets × 3 batches
		t.Fatalf("progress fired %d times, want %d", len(events), want)
	}
	// Per-dataset events stay ordered even though datasets interleave.
	last := map[string]int{}
	for _, ev := range events {
		if ev.Pairs <= last[ev.Dataset] {
			t.Errorf("dataset %s progress went backwards: %d after %d",
				ev.Dataset, ev.Pairs, last[ev.Dataset])
		}
		last[ev.Dataset] = ev.Pairs
	}
	// Result order follows the declaration order, not completion order.
	for i, want := range []string{"d1", "d2", "d3", "d4"} {
		if res.Datasets[i].Name != want {
			t.Errorf("dataset %d = %s, want %s", i, res.Datasets[i].Name, want)
		}
	}
}

// TestRunMultiDatasetMatchesIndividualRuns: concurrent multi-dataset
// collection must reproduce exactly what each dataset yields when run
// alone at the same adjusted threshold — scheduling cannot leak between
// datasets.
func TestRunMultiDatasetMatchesIndividualRuns(t *testing.T) {
	mk := func(names ...string) []Dataset {
		var out []Dataset
		for i, n := range names {
			out = append(out, Dataset{
				Name: n,
				A:    noisyRunner(0.9 - 0.1*float64(i)),
				B:    noisyRunner(0.7 - 0.1*float64(i)),
			})
		}
		return out
	}
	all := Experiment{Datasets: mk("d1", "d2", "d3"), Seed: 3, MaxRuns: 24}
	res, err := all.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	adj := stats.GammaBonferroni(DefaultGamma, 0.05, 3)
	for i, ds := range all.Datasets {
		cfg, err := all.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		dr, err := cfg.runDataset(context.Background(), ds, adj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*dr, res.Datasets[i]) {
			t.Errorf("dataset %s diverges from its solo run", ds.Name)
		}
	}
}

// TestRunHugeMaxRunsLazyAllocation is the memory regression for the lazy
// trial stream: before it, Run materialized MaxRuns Trial structs (plus one
// seed map each) before the first measurement, so a MaxRuns in the billions
// — Noether's N for γ near 0.5 — was an instant OOM. Now memory tracks the
// ~8 pairs actually collected.
func TestRunHugeMaxRunsLazyAllocation(t *testing.T) {
	e := Experiment{
		A:       noisyRunner(1.0),
		B:       noisyRunner(0.5),
		MaxRuns: 1 << 30, // ~1e9 trials if materialized eagerly (fits 32-bit int)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped || res.StopReason != StopCICleared {
		t.Fatalf("clearly separated pair did not early-stop: %d pairs, %s", res.Pairs, res.StopReason)
	}
	if res.Pairs > 64 {
		t.Errorf("collected %d pairs, expected a handful", res.Pairs)
	}
}

func TestNegativeKnobsRejected(t *testing.T) {
	ok := noisyRunner(1)
	cases := map[string]Experiment{
		"Parallelism":         {A: ok, B: ok, Parallelism: -1},
		"AnalysisParallelism": {A: ok, B: ok, AnalysisParallelism: -2},
		"MinRuns":             {A: ok, B: ok, MinRuns: -1},
		"BatchSize":           {A: ok, B: ok, BatchSize: -8},
		"MaxRuns":             {A: ok, B: ok, MaxRuns: -3},
	}
	for name, e := range cases {
		if _, err := e.Run(context.Background()); err == nil {
			t.Errorf("%s: explicit negative accepted", name)
		}
	}
	// The option form must reject the same way (these used to be silently
	// coerced to defaults, unlike WithGamma/WithConfidence/WithBootstrap).
	a := []float64{1, 2, 3}
	for name, opt := range map[string]Option{
		"WithParallelism":         WithParallelism(-1),
		"WithAnalysisParallelism": WithAnalysisParallelism(-1),
		"WithMinRuns":             WithMinRuns(-5),
		"WithBatchSize":           WithBatchSize(-1),
		"WithMaxRuns":             WithMaxRuns(-1),
	} {
		if _, err := Analyze(a, a, opt); err == nil {
			t.Errorf("%s(-n): explicit negative accepted", name)
		}
	}
	// Zero still means "use the default".
	if _, err := Analyze(a, a, WithParallelism(0), WithBatchSize(0), WithMinRuns(0), WithAnalysisParallelism(0)); err != nil {
		t.Errorf("zero-valued knobs rejected: %v", err)
	}
}

func TestScoreEntryPointsRejectTooFewScores(t *testing.T) {
	cases := map[string][2][]float64{
		"empty":     {nil, nil},
		"single":    {{1}, {2}},
		"one-sided": {{1, 2, 3}, {1}},
	}
	for name, c := range cases {
		if _, err := Analyze(c[0], c[1], WithUnpaired()); err == nil {
			t.Errorf("Analyze unpaired %s: accepted", name)
		}
	}
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("Analyze paired empty: accepted")
	}
	if _, err := Analyze([]float64{1}, []float64{2}); err == nil {
		t.Error("Analyze paired single: accepted")
	}
	if _, err := AnalyzeDatasets([]DatasetScores{
		{Name: "ok", ScoresA: []float64{1, 2, 3}, ScoresB: []float64{0, 1, 2}},
		{Name: "thin", ScoresA: []float64{1}, ScoresB: []float64{0}},
	}); err == nil {
		t.Error("AnalyzeDatasets with a 1-score dataset: accepted")
	}
	// Deprecated wrappers route through the same boundary.
	if _, err := Compare([]float64{1}, []float64{2}); err == nil {
		t.Error("Compare single pair: accepted")
	}
	if _, err := CompareUnpaired([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("CompareUnpaired single measure: accepted")
	}
}

// TestAnalyzeDatasetsNameValidation: per-dataset bootstrap streams are
// keyed by (seed, name), so AnalyzeDatasets must enforce the same
// present-and-unique name rule as Experiment.Run — two same-named (or
// unnamed) datasets would silently share one resampling stream and their
// CIs would be correlated instead of independent.
func TestAnalyzeDatasetsNameValidation(t *testing.T) {
	scores := syntheticDatasets(3, 2, 10, 1.0)
	dup := []DatasetScores{
		{Name: "x", ScoresA: scores[0].ScoresA, ScoresB: scores[0].ScoresB},
		{Name: "x", ScoresA: scores[1].ScoresA, ScoresB: scores[1].ScoresB},
	}
	if _, err := AnalyzeDatasets(dup); err == nil {
		t.Error("duplicate dataset names accepted")
	}
	unnamed := []DatasetScores{
		{Name: "x", ScoresA: scores[0].ScoresA, ScoresB: scores[0].ScoresB},
		{ScoresA: scores[1].ScoresA, ScoresB: scores[1].ScoresB},
	}
	if _, err := AnalyzeDatasets(unnamed); err == nil {
		t.Error("unnamed dataset in a multi-dataset analysis accepted")
	}
	// A lone unnamed dataset stays legal, like single-dataset Analyze.
	solo := []DatasetScores{{ScoresA: scores[0].ScoresA, ScoresB: scores[0].ScoresB}}
	if _, err := AnalyzeDatasets(solo); err != nil {
		t.Errorf("single unnamed dataset rejected: %v", err)
	}
}

// TestSaturatedAdjustedGammaEarlyStop: with enough datasets the Bonferroni
// adjustment saturates at stats.GammaMax < 1; a total winner must still
// trigger the CI-cleared early stop, which the old clamp at exactly 1.0
// made unreachable (CI.Lo > 1 is impossible).
func TestSaturatedAdjustedGammaEarlyStop(t *testing.T) {
	adj := stats.GammaBonferroni(DefaultGamma, 0.05, 200)
	if adj != stats.GammaMax {
		t.Fatalf("200 comparisons should saturate the adjustment, got %v", adj)
	}
	var datasets []Dataset
	for i := 0; i < 200; i++ {
		datasets = append(datasets, Dataset{Name: "d" + strconv.Itoa(i)})
	}
	e := Experiment{
		// A wins every single trial: the bootstrap CI is [1,1].
		A:        func(seed uint64) (float64, error) { return 1, nil },
		B:        func(seed uint64) (float64, error) { return 0, nil },
		Datasets: datasets,
		MaxRuns:  64,
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("total winner did not early-stop at the saturated threshold")
	}
	for _, d := range res.Datasets {
		if d.StopReason != StopCICleared {
			t.Fatalf("dataset %s stopped with %s, want %s", d.Name, d.StopReason, StopCICleared)
		}
		if d.Comparison.Conclusion != SignificantAndMeaningful {
			t.Fatalf("dataset %s judged %q at saturated γ", d.Name, d.Comparison.Conclusion)
		}
	}
	if !res.AllMeaningful {
		t.Error("total winner rejected by the all-datasets criterion")
	}
}
