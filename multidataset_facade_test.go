package varbench

import (
	"testing"

	"varbench/internal/xrand"
)

func syntheticDatasets(seed uint64, nDatasets, n int, diff float64) []DatasetScores {
	r := xrand.New(seed)
	out := make([]DatasetScores, nDatasets)
	for d := range out {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			base := r.NormFloat64()
			a[i] = base + diff
			b[i] = base + 0.3*r.NormFloat64()
		}
		out[d] = DatasetScores{Name: string(rune('A' + d)), ScoresA: a, ScoresB: b}
	}
	return out
}

func TestCompareAcrossDatasetsWinner(t *testing.T) {
	res, err := CompareAcrossDatasets(syntheticDatasets(1, 4, 40, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllMeaningful {
		t.Errorf("uniform winner rejected: %+v", res.PerDataset)
	}
	if res.WilcoxonP > 0.1 {
		t.Errorf("Wilcoxon p = %v", res.WilcoxonP)
	}
	if len(res.PerDataset) != 4 || len(res.Names) != 4 {
		t.Error("per-dataset bookkeeping wrong")
	}
	// Adjusted γ stricter than default.
	if res.PerDataset[0].Gamma <= DefaultGamma {
		t.Errorf("adjusted γ = %v", res.PerDataset[0].Gamma)
	}
}

func TestCompareAcrossDatasetsNull(t *testing.T) {
	res, err := CompareAcrossDatasets(syntheticDatasets(2, 3, 30, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMeaningful {
		t.Error("null accepted across datasets")
	}
}

func TestCompareAcrossDatasetsErrors(t *testing.T) {
	bad := []DatasetScores{{Name: "x", ScoresA: []float64{1}, ScoresB: []float64{1, 2}}}
	if _, err := CompareAcrossDatasets(bad); err == nil {
		t.Error("unpaired dataset accepted")
	}
	if _, err := CompareAcrossDatasets(nil); err == nil {
		t.Error("empty dataset list accepted")
	}
}
