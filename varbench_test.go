package varbench

import (
	"math"
	"strings"
	"testing"

	"varbench/internal/xrand"
)

func TestCollectPairedSharesSeeds(t *testing.T) {
	var seedsA, seedsB []uint64
	a := func(seed uint64) (float64, error) { seedsA = append(seedsA, seed); return 1, nil }
	b := func(seed uint64) (float64, error) { seedsB = append(seedsB, seed); return 0, nil }
	sa, sb, err := CollectPaired(a, b, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != 5 || len(sb) != 5 {
		t.Fatal("wrong lengths")
	}
	for i := range seedsA {
		if seedsA[i] != seedsB[i] {
			t.Fatal("pairing broken: different seeds for A and B")
		}
	}
	// Distinct runs get distinct seeds.
	seen := map[uint64]bool{}
	for _, s := range seedsA {
		if seen[s] {
			t.Fatal("seed reuse across runs")
		}
		seen[s] = true
	}
}

func TestCollectPairedPropagatesErrors(t *testing.T) {
	bad := func(uint64) (float64, error) { return 0, errSentinel }
	ok := func(uint64) (float64, error) { return 1, nil }
	if _, _, err := CollectPaired(bad, ok, 3, 1); err == nil {
		t.Error("A error not propagated")
	}
	if _, _, err := CollectPaired(ok, bad, 3, 1); err == nil {
		t.Error("B error not propagated")
	}
	if _, _, err := CollectPaired(ok, ok, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

type sentinel struct{}

func (sentinel) Error() string { return "boom" }

var errSentinel = sentinel{}

func TestCompareDominantAlgorithm(t *testing.T) {
	r := xrand.New(1)
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := r.NormFloat64()
		a[i] = base + 2
		b[i] = base + 0.2*r.NormFloat64()
	}
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Conclusion != SignificantAndMeaningful {
		t.Errorf("conclusion = %v (%s)", c.Conclusion, c)
	}
	if c.PAB < 0.95 || c.CILo <= 0.5 {
		t.Errorf("PAB stats wrong: %s", c)
	}
	if c.MeanA <= c.MeanB {
		t.Error("means inverted")
	}
	if c.RecommendedN != 29 {
		t.Errorf("recommended N = %d", c.RecommendedN)
	}
	if !strings.Contains(c.String(), "significant and meaningful") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCompareNullIsNotSignificant(t *testing.T) {
	r := xrand.New(2)
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	c, err := Compare(a, b, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.Conclusion == SignificantAndMeaningful {
		t.Errorf("null comparison declared meaningful: %s", c)
	}
}

func TestCompareOptionValidation(t *testing.T) {
	a := []float64{1, 2, 3}
	if _, err := Compare(a, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Compare(a, a, WithGamma(0.4)); err == nil {
		t.Error("γ ≤ 0.5 should error")
	}
	if _, err := Compare(a, a, WithGamma(1.0)); err == nil {
		t.Error("γ ≥ 1 should error")
	}
	if _, err := Compare([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair should error")
	}
}

func TestCompareDeterministicWithSeed(t *testing.T) {
	r := xrand.New(3)
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64() + 0.5
		b[i] = r.NormFloat64()
	}
	c1, err := Compare(a, b, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compare(a, b, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if c1.CILo != c2.CILo || c1.CIHi != c2.CIHi {
		t.Error("same seed gave different CIs")
	}
}

func TestCompareGammaAffectsConclusion(t *testing.T) {
	// A modest effect: meaningful at γ=0.55, not at γ=0.95.
	r := xrand.New(4)
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64() + 1.0
		b[i] = r.NormFloat64()
	}
	low, err := Compare(a, b, WithGamma(0.55))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Compare(a, b, WithGamma(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if low.Conclusion != SignificantAndMeaningful {
		t.Errorf("γ=0.55: %s", low)
	}
	if high.Conclusion != SignificantNotMeaningful {
		t.Errorf("γ=0.99: %s", high)
	}
}

func TestCompareUnpaired(t *testing.T) {
	r := xrand.New(8)
	a := make([]float64, 35)
	b := make([]float64, 25) // unequal sizes are fine unpaired
	for i := range a {
		a[i] = r.Normal(2, 1)
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	c, err := CompareUnpaired(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Conclusion != SignificantAndMeaningful {
		t.Errorf("unpaired dominance: %s", c)
	}
	if c.N != 25 {
		t.Errorf("N = %d, want min size 25", c.N)
	}
	if _, err := CompareUnpaired(a, b, WithGamma(0.3)); err == nil {
		t.Error("bad γ accepted")
	}
	if _, err := CompareUnpaired([]float64{1}, b); err == nil {
		t.Error("single measure accepted")
	}
}

func TestSampleSize(t *testing.T) {
	if SampleSize(0.75) != 29 {
		t.Errorf("SampleSize(0.75) = %d, want 29", SampleSize(0.75))
	}
	if SampleSize(0.9) >= SampleSize(0.75) {
		t.Error("larger γ should need fewer samples")
	}
}

func TestSummarize(t *testing.T) {
	r := xrand.New(5)
	scores := make([]float64, 50)
	for i := range scores {
		scores[i] = r.Normal(0.8, 0.02)
	}
	s := Summarize(scores)
	if s.N != 50 {
		t.Error("N wrong")
	}
	if math.Abs(s.Mean-0.8) > 0.02 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Std <= 0 || s.StdErr >= s.Std {
		t.Errorf("std/stderr wrong: %v %v", s.Std, s.StdErr)
	}
	if s.NormalP < 0.01 {
		t.Errorf("normal data rejected: p=%v", s.NormalP)
	}
	// Degenerate input gets NaN normality, not a panic.
	tiny := Summarize([]float64{1, 2})
	if !math.IsNaN(tiny.NormalP) {
		t.Error("n=2 should give NaN normality p")
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	// The full recommended protocol on two synthetic "pipelines" whose true
	// P(A>B) ≈ Φ(0.8/√2) ≈ 0.71 — strong but not overwhelming.
	runner := func(shift float64) RunFunc {
		return func(seed uint64) (float64, error) {
			r := xrand.New(seed)
			_ = r.Uint64()
			return xrand.New(seed^0xABCD).NormFloat64()*0.02 + shift, nil
		}
	}
	n := SampleSize(0.75)
	a, b, err := CollectPaired(runner(0.85), runner(0.84), n, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 29 {
		t.Fatalf("collected %d pairs", len(a))
	}
	c, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("workflow: %s", c)
	if c.N != c.RecommendedN {
		t.Error("sample size bookkeeping wrong")
	}
}
