package varbench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"varbench/internal/xrand"
)

// The resilience layer's error taxonomy. Every trial that exhausts its
// attempts fails with an error matching exactly one of these sentinels via
// errors.Is, so callers can classify failures without parsing messages:
//
//   - ErrTrialTimeout: the pipeline ran past Experiment.TrialTimeout.
//   - ErrTrialPanic: the pipeline panicked; the panic was recovered and the
//     process kept running.
//   - ErrTrialFailed: any other pipeline error (the pipeline returned err).
//
// Context cancellation is deliberately outside the taxonomy: a canceled
// trial is the pool shutting down, not a trial fault, and is never retried
// or quarantined.
var (
	// ErrTrialFailed marks a trial whose pipeline returned an error.
	ErrTrialFailed = errors.New("trial failed")
	// ErrTrialTimeout marks a trial that exceeded its per-trial deadline.
	ErrTrialTimeout = errors.New("trial timed out")
	// ErrTrialPanic marks a trial whose pipeline panicked.
	ErrTrialPanic = errors.New("trial panicked")
)

// Default knobs of a RetryPolicy; see RetryPolicy.
const (
	// DefaultRetryBaseDelay is the backoff before the first retry.
	DefaultRetryBaseDelay = 10 * time.Millisecond
	// DefaultRetryMaxDelay caps the exponential backoff growth.
	DefaultRetryMaxDelay = 1 * time.Second
)

// A RetryPolicy re-runs failed trials with deterministic seeded exponential
// backoff. The zero value means "no retries" (a single attempt); set
// MaxAttempts ≥ 2 to retry. Because the backoff pause before retry k is a
// pure function of (trial seed, k) — the jitter derives from internal/xrand,
// never from wall clock or a global RNG — a rerun of the same experiment
// retries on the identical schedule, keeping resilient collections
// bit-identical end to end.
//
// A RetryPolicy also drives non-trial waits that want the same deterministic
// schedule, e.g. the CLI's -wait-lock loop around store.ErrLocked, through
// Do.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per trial, first try
	// included. 0 means 1 (no retries). Setting it — even to 1 — counts as
	// configuring resilience and opts an Experiment into quarantine mode by
	// default; see Experiment.FailFast.
	MaxAttempts int
	// BaseDelay is the pause before the first retry (default 10ms). The
	// pause before retry k is min(MaxDelay, BaseDelay·2^(k-1)), scaled by a
	// seed-derived jitter factor in [0.5, 1.5).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 1s).
	MaxDelay time.Duration
	// Retryable classifies errors: return false to fail immediately without
	// consuming the remaining attempts. nil retries every error except
	// context cancellation, which is never retried regardless.
	Retryable func(error) bool
}

// normalized returns a copy of p with zero-valued knobs replaced by their
// defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	return p
}

// validate rejects explicitly negative knobs, mirroring the Experiment
// convention that zero means "default" and negatives are deliberate errors.
func (p RetryPolicy) validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("varbench: RetryPolicy.MaxAttempts must not be negative, got %d (0 means 1 attempt)", p.MaxAttempts)
	}
	if p.BaseDelay < 0 {
		return fmt.Errorf("varbench: RetryPolicy.BaseDelay must not be negative, got %v (0 means default)", p.BaseDelay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("varbench: RetryPolicy.MaxDelay must not be negative, got %v (0 means default)", p.MaxDelay)
	}
	return nil
}

// retryable reports whether err should consume another attempt. Context
// cancellation never does: the pool is shutting down, and retrying would
// just burn the remaining attempts against a dead context.
func (p RetryPolicy) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return true
}

// Backoff returns the pause before retry attempt (1-based: the pause after
// the attempt-th failed attempt). It is a pure function of (seed, attempt):
// exponential growth min(MaxDelay, BaseDelay·2^(attempt-1)) scaled by a
// jitter factor in [0.5, 1.5) drawn from an xrand stream labeled by the
// attempt, so concurrent trials with distinct seeds spread out while a
// rerun of the same trial backs off identically.
func (p RetryPolicy) Backoff(seed uint64, attempt int) time.Duration {
	p = p.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitter := 0.5 + xrand.New(seed).Split(fmt.Sprintf("retry/attempt/%d", attempt)).Float64()
	return time.Duration(float64(d) * jitter)
}

// Do runs fn under the policy: on a retryable error it sleeps the
// deterministic Backoff for the attempt and tries again, up to MaxAttempts
// total attempts. The returned error is fn's last error; if ctx is canceled
// mid-backoff, Do returns early with an error matching both ctx.Err() and
// fn's last error via errors.Is. The no-fault fast path (fn succeeds on the
// first attempt) performs no allocation.
func (p RetryPolicy) Do(ctx context.Context, seed uint64, fn func() error) error {
	p = p.normalized()
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || attempt >= p.MaxAttempts || !p.retryable(err) {
			return err
		}
		if serr := sleepCtx(ctx, p.Backoff(seed, attempt)); serr != nil {
			return fmt.Errorf("varbench: retry canceled after %d attempt(s): %w (last error: %w)", attempt, serr, err)
		}
	}
}

// sleepCtx pauses for d or until ctx is done, whichever comes first,
// returning ctx.Err() in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
