package varbench

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// feedChunked runs data through a LineTailer in chunks of the given size
// and collects the emitted lines (plus the remainder as a final line when
// asked), counting parse outcomes the way the watch command does.
func tailLines(t *testing.T, data []byte, chunk int) [][]byte {
	t.Helper()
	var tailer LineTailer
	var lines [][]byte
	emit := func(line []byte) error {
		lines = append(lines, bytes.Clone(line))
		return nil
	}
	for lo := 0; lo < len(data); lo += chunk {
		if err := tailer.Feed(data[lo:min(lo+chunk, len(data))], emit); err != nil {
			t.Fatal(err)
		}
	}
	if rem := tailer.Remainder(); len(rem) > 0 {
		lines = append(lines, bytes.Clone(rem))
	}
	return lines
}

// TestLineTailerChunkingInvariant: the emitted line sequence must not
// depend on how the byte stream was chunked — a tail read can split lines
// at any byte.
func TestLineTailerChunkingInvariant(t *testing.T) {
	data := []byte("0.1,0.2\n# comment\n\n0.3,0.4\r\n{\"a\":0.5,\"b\":0.6}\ngarbage here\n0.7,")
	ref := tailLines(t, data, len(data))
	for _, chunk := range []int{1, 2, 3, 7, 16} {
		got := tailLines(t, data, chunk)
		if len(got) != len(ref) {
			t.Fatalf("chunk=%d: %d lines, want %d", chunk, len(got), len(ref))
		}
		for i := range got {
			if !bytes.Equal(got[i], ref[i]) {
				t.Fatalf("chunk=%d line %d: %q != %q", chunk, i, got[i], ref[i])
			}
		}
	}
	if string(ref[len(ref)-1]) != "0.7," {
		t.Fatalf("remainder not preserved: %q", ref[len(ref)-1])
	}
}

// TestLineTailerEmitError: a failing emit stops the scan, and the already
// consumed lines are not replayed by the next Feed.
func TestLineTailerEmitError(t *testing.T) {
	var tailer LineTailer
	var seen []string
	boom := fmt.Errorf("boom")
	err := tailer.Feed([]byte("one\ntwo\nthree\n"), func(line []byte) error {
		seen = append(seen, string(line))
		if len(seen) == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("Feed returned %v, want the emit error", err)
	}
	if err := tailer.Feed(nil, func(line []byte) error {
		seen = append(seen, string(line))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(seen); got != "[one two three]" {
		t.Fatalf("lines after emit error: %v", seen)
	}
}

// TestParseScorePair pins the two accepted syntaxes, the skip rules and
// the error cases.
func TestParseScorePair(t *testing.T) {
	cases := []struct {
		line string
		a, b float64
		ok   bool
		err  bool
	}{
		{"0.91,0.87", 0.91, 0.87, true, false},
		{" 1e-3 ,\t2 ", 1e-3, 2, true, false},
		{"0.5,0.6,extra,columns", 0.5, 0.6, true, false},
		{`{"a": 0.91, "b": 0.87}`, 0.91, 0.87, true, false},
		{`{"b": 1, "a": 2}`, 2, 1, true, false},
		{"", 0, 0, false, false},
		{"   ", 0, 0, false, false},
		{"# a comment", 0, 0, false, false},
		{"scoreA,scoreB", 0, 0, false, false}, // digit-free header
		{"alpha", 0, 0, false, false},         // digit-free stray label
		{"0.5", 0, 0, false, true},            // one column with digits
		{"0.5,bogus7", 0, 0, false, true},
		{`{"a": 0.91}`, 0, 0, false, true},
		{`{"a": bad`, 0, 0, false, true},
		{"NaN,0.5", 0, 0, false, true},
		{"+Inf,0.5", 0, 0, false, true},
		{`{"a": 1, "b": null}`, 0, 0, false, true},
	}
	for _, c := range cases {
		a, b, ok, err := ParseScorePair([]byte(c.line))
		if ok != c.ok || (err != nil) != c.err {
			t.Errorf("ParseScorePair(%q) = ok=%v err=%v, want ok=%v err=%v", c.line, ok, err, c.ok, c.err)
			continue
		}
		if ok && (a != c.a || b != c.b) {
			t.Errorf("ParseScorePair(%q) = (%v, %v), want (%v, %v)", c.line, a, b, c.a, c.b)
		}
	}
}

// FuzzWatchTailer: for arbitrary bytes and an arbitrary split point, the
// tailer + parser pipeline must emit the same line sequence regardless of
// chunking and must never panic on garbage. This is the partial-line /
// garbage robustness target the watch command relies on (CI runs it as a
// short fuzz-smoke; the seed corpus runs everywhere as a plain test).
func FuzzWatchTailer(f *testing.F) {
	f.Add([]byte("0.1,0.2\n0.3,0.4\n"), 3)
	f.Add([]byte("{\"a\":1,\"b\":2}\r\n#x\n9,"), 1)
	f.Add([]byte("garbage\nNaN,1\n1,1\n"), 5)
	f.Add([]byte{0, 10, 255, 10, 44, 10}, 2)
	f.Fuzz(func(t *testing.T, data []byte, split int) {
		parseAll := func(chunks [][]byte) (lines []string, pairs int, bad int) {
			var tailer LineTailer
			emit := func(line []byte) error {
				lines = append(lines, string(line))
				if _, _, ok, err := ParseScorePair(line); err != nil {
					bad++
				} else if ok {
					pairs++
				}
				return nil
			}
			for _, c := range chunks {
				if err := tailer.Feed(c, emit); err != nil {
					t.Fatalf("emit never fails here: %v", err)
				}
			}
			if rem := tailer.Remainder(); len(rem) > 0 {
				if err := emit(bytes.Clone(rem)); err != nil {
					t.Fatal(err)
				}
			}
			return lines, pairs, bad
		}
		if split < 0 {
			split = -split
		}
		split %= len(data) + 1
		one, p1, b1 := parseAll([][]byte{data})
		two, p2, b2 := parseAll([][]byte{data[:split], data[split:]})
		if fmt.Sprint(one) != fmt.Sprint(two) || p1 != p2 || b1 != b2 {
			t.Fatalf("chunking changed the parse: %v pairs=%d bad=%d vs %v pairs=%d bad=%d",
				one, p1, b1, two, p2, b2)
		}
	})
}

// TestStreamMatchesAnalyze: a stream fed in dribs and drabs reaches the
// same conclusion fields as itself fed in one call — and its point
// estimate/means match Analyze (the CI differs by design: weighted vs
// multinomial bootstrap).
func TestStreamMatchesAnalyze(t *testing.T) {
	a := []float64{0.91, 0.89, 0.93, 0.90, 0.92, 0.88, 0.94, 0.91, 0.90, 0.92}
	b := []float64{0.85, 0.86, 0.84, 0.87, 0.83, 0.85, 0.86, 0.84, 0.85, 0.83}

	oneShot, err := NewStream(WithSeed(3), WithGamma(0.7))
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := oneShot.Extend(a, b)
	if err != nil || resOne == nil {
		t.Fatalf("one-shot extend: %v (res=%v)", err, resOne)
	}

	dribs, err := NewStream(WithSeed(3), WithGamma(0.7))
	if err != nil {
		t.Fatal(err)
	}
	var resDribs *Result
	for i := range a {
		if resDribs, err = dribs.Extend(a[i:i+1], b[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if resDribs.Comparison != resOne.Comparison {
		t.Fatalf("drib-fed stream differs:\n%+v\n%+v", resDribs.Comparison, resOne.Comparison)
	}

	ref, err := Analyze(a, b, WithSeed(3), WithGamma(0.7))
	if err != nil {
		t.Fatal(err)
	}
	c, rc := resOne.Comparison, ref.Comparison
	if math.Float64bits(c.PAB) != math.Float64bits(rc.PAB) ||
		math.Float64bits(c.MeanA) != math.Float64bits(rc.MeanA) ||
		math.Float64bits(c.MeanB) != math.Float64bits(rc.MeanB) ||
		c.N != rc.N {
		t.Fatalf("stream point estimate drifts from Analyze:\n%+v\n%+v", c, rc)
	}
	if c.CILo > c.PAB || c.CIHi < c.PAB {
		t.Fatalf("stream CI [%v, %v] does not bracket the point %v", c.CILo, c.CIHi, c.PAB)
	}

	// Below two pairs: no result, no error.
	early, _ := NewStream(WithSeed(3))
	if res, err := early.Extend(a[:1], b[:1]); err != nil || res != nil {
		t.Fatalf("1-pair stream: res=%v err=%v, want nil/nil", res, err)
	}
	if _, err := early.Extend(a[:2], b[:1]); err == nil {
		t.Fatal("unpaired extend accepted")
	}
}

// TestStreamSubscribe: subscribers get the latest result after each
// extend, latest-wins under slow consumption, and close on ctx/Close.
func TestStreamSubscribe(t *testing.T) {
	s, err := NewStream(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Subscribe(t.Context())
	a := []float64{0.9, 0.8, 0.95, 0.85, 0.9, 0.88}
	b := []float64{0.1, 0.2, 0.15, 0.25, 0.1, 0.12}
	for i := range a {
		if _, err := s.Extend(a[i:i+1], b[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	// Latest-wins: exactly one pending result, the newest.
	res := <-ch
	if res == nil || res.Pairs != len(a) {
		t.Fatalf("subscriber got %+v, want the %d-pair result", res, len(a))
	}
	select {
	case stale := <-ch:
		t.Fatalf("subscriber had a backlog: %+v", stale)
	default:
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-ch; open {
		t.Fatal("subscriber channel still open after Close")
	}
	if _, err := s.Extend(a[:1], b[:1]); err == nil {
		t.Fatal("extend after Close accepted")
	}
}

// BenchmarkWatchIngest measures the watch ingestion hot path — tail,
// parse, extend — per chunk of 8 score lines against a live stream with
// K=1000 resamples. Wired into the CI bench regression gate.
func BenchmarkWatchIngest(bm *testing.B) {
	var data bytes.Buffer
	const batch = 8
	for i := 0; i < batch; i++ {
		fmt.Fprintf(&data, "0.9%d,0.8%d\n", i, (i+3)%10)
	}
	chunk := data.Bytes()
	s, err := NewStream(WithSeed(7))
	if err != nil {
		bm.Fatal(err)
	}
	var tailer LineTailer
	a := make([]float64, 0, batch)
	b := make([]float64, 0, batch)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		a, b = a[:0], b[:0]
		err := tailer.Feed(chunk, func(line []byte) error {
			av, bv, ok, err := ParseScorePair(line)
			if err != nil {
				return err
			}
			if ok {
				a = append(a, av)
				b = append(b, bv)
			}
			return nil
		})
		if err != nil {
			bm.Fatal(err)
		}
		if _, err := s.Extend(a, b); err != nil {
			bm.Fatal(err)
		}
	}
}
