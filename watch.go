package varbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file is the ingestion side of the streaming front end: varbench
// watch tails a growing score file and feeds a Stream. The tailer and the
// line parser are exported so other sidecars (log shippers, fleet agents)
// can reuse the exact same framing and syntax rules — which also keeps a
// resumed watch byte-identical: parsing is a pure function of the bytes.

// A LineTailer incrementally splits an append-only byte stream into lines.
// Feed it chunks of any size — reads racing a writer may split a line at
// any byte — and it buffers the trailing partial line until its newline
// arrives: the emitted line sequence is invariant under chunking
// (fuzz-tested). A final "\r" is stripped, so CRLF files tail identically.
type LineTailer struct {
	buf []byte
}

// Feed appends one chunk and invokes emit for every newline-completed
// line (without its terminator). The line slice is only valid during the
// emit call; a non-nil emit error stops the scan and is returned.
func (t *LineTailer) Feed(chunk []byte, emit func(line []byte) error) error {
	t.buf = append(t.buf, chunk...)
	start := 0
	for {
		i := bytes.IndexByte(t.buf[start:], '\n')
		if i < 0 {
			break
		}
		line := t.buf[start : start+i]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		start += i + 1
		if err := emit(line); err != nil {
			t.buf = append(t.buf[:0], t.buf[start:]...)
			return err
		}
	}
	// Keep only the partial tail; compact in place so the buffer never
	// grows past the longest line.
	t.buf = append(t.buf[:0], t.buf[start:]...)
	return nil
}

// Remainder returns the buffered partial line awaiting its newline —
// consult it at end of stream, where a file commonly lacks a final
// terminator, and hand it to the same per-line processing.
func (t *LineTailer) Remainder() []byte { return t.buf }

// jsonScorePair decodes the JSONL form of one score pair. Pointer fields
// distinguish "absent" from an explicit 0; floats are decode-only here, so
// no NaN ever needs marshalling.
type jsonScorePair struct {
	A *float64 `json:"a"`
	B *float64 `json:"b"`
}

// ParseScorePair parses one line of a paired score stream. Two syntaxes
// are accepted, matching `varbench watch`:
//
//	CSV:   a,b        (further columns ignored; optional spaces)
//	JSONL: {"a": 0.91, "b": 0.87}
//
// Blank lines and '#' comments are skipped (ok=false, err=nil), as is a
// digit-free CSV header line such as "a,b" — the same rule `varbench
// compare` applies to score files. A malformed or non-finite line returns
// an error for the caller to count or surface; it never contributes pairs,
// so replaying a file skips it deterministically.
func ParseScorePair(line []byte) (a, b float64, ok bool, err error) {
	s := bytes.TrimSpace(line)
	if len(s) == 0 || s[0] == '#' {
		return 0, 0, false, nil
	}
	if s[0] == '{' {
		var p jsonScorePair
		if err := json.Unmarshal(s, &p); err != nil {
			return 0, 0, false, fmt.Errorf("bad JSONL score line %q: %w", s, err)
		}
		if p.A == nil || p.B == nil {
			return 0, 0, false, fmt.Errorf(`JSONL score line %q needs both "a" and "b"`, s)
		}
		a, b = *p.A, *p.B
	} else {
		fields := bytes.Split(s, []byte(","))
		if len(fields) < 2 {
			if !bytes.ContainsAny(s, "0123456789") {
				return 0, 0, false, nil // header or stray label
			}
			return 0, 0, false, fmt.Errorf("score line %q: want a,b", s)
		}
		a, err = strconv.ParseFloat(string(bytes.TrimSpace(fields[0])), 64)
		if err == nil {
			b, err = strconv.ParseFloat(string(bytes.TrimSpace(fields[1])), 64)
		}
		if err != nil {
			if !bytes.ContainsAny(s, "0123456789") {
				return 0, 0, false, nil // digit-free header line
			}
			return 0, 0, false, fmt.Errorf("score line %q: %w", s, err)
		}
	}
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return 0, 0, false, fmt.Errorf("score line %q: non-finite score", s)
	}
	return a, b, true, nil
}
