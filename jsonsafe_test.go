package varbench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// The paper's reports legitimately contain undefined statistics — a
// Shapiro-Wilk p-value outside n ∈ [3,5000], a correlation of a
// zero-variance sample — and encoding/json fails hard on NaN/±Inf ("json:
// unsupported value: NaN"). These tests pin the fix: every JSON surface
// encodes non-finite floats as null and the documents round-trip.

func TestVarianceSummaryNaNJSONRoundTrip(t *testing.T) {
	// n=2 is outside Shapiro-Wilk's range, so NormalP is the NaN sentinel.
	s := Summarize([]float64{0.5, 0.7})
	if !math.IsNaN(s.NormalP) {
		t.Fatalf("want NaN NormalP sentinel at n=2, got %v", s.NormalP)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal with NaN field: %v", err)
	}
	if !strings.Contains(string(b), `"normal_p":null`) {
		t.Errorf("NaN must encode as null: %s", b)
	}
	var back VarianceSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if back.N != s.N || back.Mean != s.Mean || back.Std != s.Std {
		t.Errorf("round-trip dropped finite fields: %+v vs %+v", back, s)
	}
}

func TestResultJSONRendererNaNRoundTrip(t *testing.T) {
	res := &Result{
		Name:  "nan-experiment",
		Gamma: 0.75,
		Comparison: Comparison{
			MeanA: math.NaN(),
			MeanB: 0.5,
			PAB:   0.9,
			CILo:  math.Inf(-1),
			CIHi:  math.Inf(1),
			Gamma: 0.75,
		},
		Datasets: []DatasetResult{{
			Comparison: Comparison{MeanA: math.NaN(), Gamma: 0.75},
			ScoresA:    []float64{0.1, math.NaN()},
			ScoresB:    []float64{0.2, 0.3},
			Pairs:      2,
		}},
		WilcoxonP: 1,
	}
	var buf bytes.Buffer
	if err := (JSONRenderer{Indent: true}).Render(&buf, res); err != nil {
		t.Fatalf("JSONRenderer on NaN-valued result: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"mean_a": null`) {
		t.Errorf("NaN mean must encode as null:\n%s", out)
	}
	if !strings.Contains(out, "null") || strings.Contains(out, "NaN") {
		t.Errorf("output must not contain a bare NaN token:\n%s", out)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if back.Comparison.MeanB != 0.5 || back.Comparison.PAB != 0.9 || len(back.Datasets) != 1 {
		t.Errorf("round-trip dropped finite fields: %+v", back)
	}
}

func TestVarianceReportJSONRendererNaNRoundTrip(t *testing.T) {
	rep := &VarianceReport{
		Name: "nan-study", K: 3, Realizations: 2, Mu: 0.6,
		Sources: []SourceVariance{{
			Source: "weights-init",
			Mean:   0.6,
			Std:    0, // zero-variance row: ρ is undefined
			Curve:  SECurve{K: []int{1, 2}, SE: []float64{0.1, math.NaN()}},
			Decomposition: Decomposition{
				Bias: 0.01, Var: 0, Rho: math.NaN(), MSE: math.Inf(1),
			},
			Measures: [][]float64{{0.6, math.NaN(), 0.6}},
		}},
		Joint: SourceVariance{Source: JointLabel, Mean: 0.6},
	}
	var buf bytes.Buffer
	if err := (VarianceJSONRenderer{}).Render(&buf, rep); err != nil {
		t.Fatalf("VarianceJSONRenderer on NaN-valued report: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"rho":null`) {
		t.Errorf("NaN ρ must encode as null:\n%s", out)
	}
	if !strings.Contains(out, `"mse":null`) {
		t.Errorf("+Inf MSE must encode as null:\n%s", out)
	}
	var back VarianceReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if back.Name != rep.Name || len(back.Sources) != 1 || back.Sources[0].Decomposition.Bias != 0.01 {
		t.Errorf("round-trip dropped finite fields: %+v", back)
	}
}

// TestJSONRendererUnchangedWhenFinite: for NaN-free results the sanitized
// encoder must be byte-identical to encoding/json, so existing consumers
// and golden files see no change.
func TestJSONRendererUnchangedWhenFinite(t *testing.T) {
	res := &Result{
		Name:  "finite",
		Gamma: 0.75,
		Seed:  3,
		Comparison: Comparison{
			MeanA: 0.8, MeanB: 0.7, PAB: 0.9, CILo: 0.82, CIHi: 0.97,
			Gamma: 0.75, Conclusion: SignificantAndMeaningful,
			RecommendedN: 29, N: 10,
		},
		Datasets: []DatasetResult{{
			Comparison: Comparison{MeanA: 0.8, Gamma: 0.75},
			ScoresA:    []float64{0.1, 0.2},
			ScoresB:    []float64{0.3, 0.4},
			Pairs:      2,
			StopReason: StopMaxRuns,
		}},
		WilcoxonP: 1, Pairs: 2, Runs: 4,
	}
	type shadow Result // same layout, no MarshalJSON
	want, err := json.Marshal((*shadow)(res))
	if err != nil {
		t.Fatal(err)
	}
	// The shadow still marshals nested types through their MarshalJSON;
	// equality of the full documents is the compatibility check.
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("sanitized encoding diverged for finite values:\n got %s\nwant %s", got, want)
	}
}
