// Package varbench is a toolkit for variance-aware machine-learning
// benchmarks, implementing the recommendations of Bouthillier et al.,
// "Accounting for Variance in Machine Learning Benchmarks" (MLSys 2021):
//
//  1. Randomize as many sources of variation as possible when measuring a
//     pipeline's performance (CollectPaired runs your pipeline under fresh
//     seeds, pairing the two algorithms on shared seeds).
//  2. Use multiple random data splits rather than a single fixed test set
//     (see internal/data for bootstrap / out-of-bootstrap splitting).
//  3. Conclude with the probability of outperforming P(A>B) against a
//     meaningfulness threshold γ, not with a bare average difference
//     (Compare implements the full Appendix C protocol).
//
// The internal packages contain the complete reproduction of the paper's
// experiments: five synthetic case studies, the ideal and biased estimators,
// the simulation study of decision criteria, and one driver per figure and
// table (run `go run ./cmd/varbench all -quick`).
package varbench

import (
	"fmt"
	"math"

	"varbench/internal/compare"
	"varbench/internal/stats"
	"varbench/internal/xrand"
)

// DefaultGamma is the recommended meaningfulness threshold for P(A>B).
const DefaultGamma = compare.DefaultGamma

// RunFunc executes one complete benchmark measurement of a learning
// pipeline — ideally training with fresh data split, initialization, data
// order, augmentation (and, budget permitting, hyperparameter optimization)
// seeds derived from seed — and returns the performance (higher is better).
type RunFunc func(seed uint64) (float64, error)

// CollectPaired measures two pipelines n times each, pairing them on shared
// seeds: run i of both algorithms receives the same seed, so shared sources
// of variation (data splits, ordering) cancel in the comparison, which
// increases statistical power at no cost (Appendix C.2).
func CollectPaired(a, b RunFunc, n int, baseSeed uint64) (scoresA, scoresB []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("varbench: n must be ≥ 1")
	}
	seeder := xrand.New(baseSeed)
	scoresA = make([]float64, n)
	scoresB = make([]float64, n)
	for i := 0; i < n; i++ {
		seed := seeder.Uint64()
		if scoresA[i], err = a(seed); err != nil {
			return nil, nil, fmt.Errorf("varbench: algorithm A run %d: %w", i, err)
		}
		if scoresB[i], err = b(seed); err != nil {
			return nil, nil, fmt.Errorf("varbench: algorithm B run %d: %w", i, err)
		}
	}
	return scoresA, scoresB, nil
}

// Conclusion is the three-zone outcome of the recommended test.
type Conclusion string

// The possible conclusions.
const (
	// NotSignificant: the difference could be noise alone; collect more
	// measurements or treat the algorithms as equivalent.
	NotSignificant Conclusion = "not significant"
	// SignificantNotMeaningful: a real but practically negligible
	// difference (P(A>B) below γ).
	SignificantNotMeaningful Conclusion = "significant but not meaningful"
	// SignificantAndMeaningful: algorithm A reliably outperforms B.
	SignificantAndMeaningful Conclusion = "significant and meaningful"
)

// Comparison is the result of the recommended statistical protocol.
type Comparison struct {
	// MeanA, MeanB are the average performances.
	MeanA, MeanB float64
	// PAB is the estimated probability that A outperforms B on one run
	// (ties counted half) — Equation 9.
	PAB float64
	// CILo, CIHi bound PAB with a percentile-bootstrap confidence interval.
	CILo, CIHi float64
	// Gamma is the meaningfulness threshold the conclusion used.
	Gamma float64
	// Conclusion is the three-zone decision of Appendix C.6.
	Conclusion Conclusion
	// RecommendedN is Noether's minimal sample size for this γ at
	// α=β=0.05; if fewer pairs were supplied, the comparison is
	// underpowered and NotSignificant outcomes are inconclusive.
	RecommendedN int
	// N is the number of pairs actually used.
	N int
}

// Option adjusts the comparison protocol.
type Option func(*options)

type options struct {
	gamma     float64
	level     float64
	bootstrap int
	seed      uint64
}

// WithGamma sets the meaningfulness threshold (default 0.75).
func WithGamma(gamma float64) Option { return func(o *options) { o.gamma = gamma } }

// WithConfidence sets the CI confidence level (default 0.95).
func WithConfidence(level float64) Option { return func(o *options) { o.level = level } }

// WithBootstrap sets the number of bootstrap resamples (default 1000).
func WithBootstrap(k int) Option { return func(o *options) { o.bootstrap = k } }

// WithSeed seeds the bootstrap (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// Compare applies the paper's recommended test to paired performance
// measures: scoresA[i] and scoresB[i] must come from the same seeds/splits.
// It returns the estimated P(A>B), its confidence interval, and the
// three-zone conclusion.
func Compare(scoresA, scoresB []float64, opts ...Option) (Comparison, error) {
	if len(scoresA) != len(scoresB) {
		return Comparison{}, fmt.Errorf("varbench: unpaired lengths %d vs %d",
			len(scoresA), len(scoresB))
	}
	o := options{gamma: DefaultGamma, level: 0.95, bootstrap: 1000, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.gamma <= 0.5 || o.gamma >= 1 {
		return Comparison{}, fmt.Errorf("varbench: γ must be in (0.5, 1), got %v", o.gamma)
	}
	pairs, err := compare.Pairs(scoresA, scoresB)
	if err != nil {
		return Comparison{}, err
	}
	crit := compare.PAB{Gamma: o.gamma, Level: o.level, Bootstrap: o.bootstrap}
	res, err := crit.Evaluate(pairs, xrand.New(o.seed))
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{
		MeanA:        stats.Mean(scoresA),
		MeanB:        stats.Mean(scoresB),
		PAB:          res.PAB,
		CILo:         res.CI.Lo,
		CIHi:         res.CI.Hi,
		Gamma:        o.gamma,
		RecommendedN: stats.NoetherSampleSize(o.gamma, 0.05, 0.05),
		N:            len(pairs),
	}
	switch res.Decision {
	case compare.SignificantAndMeaningful:
		out.Conclusion = SignificantAndMeaningful
	case compare.SignificantNotMeaningful:
		out.Conclusion = SignificantNotMeaningful
	default:
		out.Conclusion = NotSignificant
	}
	return out, nil
}

// CompareUnpaired applies the recommended test to measures collected
// without shared seeds: P(A>B) comes from the Mann-Whitney U statistic and
// the bootstrap resamples each sample independently. Prefer Compare with
// CollectPaired when you control both pipelines — pairing increases power
// substantially (Appendix C.2).
func CompareUnpaired(scoresA, scoresB []float64, opts ...Option) (Comparison, error) {
	o := options{gamma: DefaultGamma, level: 0.95, bootstrap: 1000, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.gamma <= 0.5 || o.gamma >= 1 {
		return Comparison{}, fmt.Errorf("varbench: γ must be in (0.5, 1), got %v", o.gamma)
	}
	crit := compare.PAB{Gamma: o.gamma, Level: o.level, Bootstrap: o.bootstrap}
	res, err := crit.EvaluateUnpaired(scoresA, scoresB, xrand.New(o.seed))
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{
		MeanA:        stats.Mean(scoresA),
		MeanB:        stats.Mean(scoresB),
		PAB:          res.PAB,
		CILo:         res.CI.Lo,
		CIHi:         res.CI.Hi,
		Gamma:        o.gamma,
		RecommendedN: stats.NoetherSampleSize(o.gamma, 0.05, 0.05),
		N:            min(len(scoresA), len(scoresB)),
	}
	switch res.Decision {
	case compare.SignificantAndMeaningful:
		out.Conclusion = SignificantAndMeaningful
	case compare.SignificantNotMeaningful:
		out.Conclusion = SignificantNotMeaningful
	default:
		out.Conclusion = NotSignificant
	}
	return out, nil
}

// String renders the comparison in one line.
func (c Comparison) String() string {
	return fmt.Sprintf(
		"P(A>B)=%.3f CI[%.3f, %.3f] γ=%.2f n=%d (recommended ≥%d): %s",
		c.PAB, c.CILo, c.CIHi, c.Gamma, c.N, c.RecommendedN, c.Conclusion)
}

// SampleSize returns the minimal number of paired measurements for the
// recommended test to detect P(A>B) ≥ gamma with 5% false positives and 5%
// false negatives (Noether 1987; Figure C.1). SampleSize(0.75) = 29.
func SampleSize(gamma float64) int {
	return stats.NoetherSampleSize(gamma, 0.05, 0.05)
}

// DatasetScores carries the paired scores of one dataset for a multi-dataset
// comparison.
type DatasetScores struct {
	Name             string
	ScoresA, ScoresB []float64
}

// MultiDatasetComparison aggregates evidence across several datasets
// (Section 6 of the paper).
type MultiDatasetComparison struct {
	// PerDataset holds one Comparison per dataset, evaluated at the
	// Bonferroni-adjusted meaningfulness threshold.
	PerDataset []Comparison
	// Names aligns with PerDataset.
	Names []string
	// AllMeaningful is the Dror et al. (2017) replicability criterion: A
	// beats B significantly and meaningfully on every dataset.
	AllMeaningful bool
	// WilcoxonP is Demšar's (2006) signed-rank p-value over per-dataset
	// mean scores (one-sided; 1 when fewer than 3 datasets).
	WilcoxonP float64
}

// CompareAcrossDatasets runs the recommended test per dataset with a
// multiple-comparison-adjusted threshold and combines the evidence.
func CompareAcrossDatasets(datasets []DatasetScores, opts ...Option) (MultiDatasetComparison, error) {
	o := options{gamma: DefaultGamma, level: 0.95, bootstrap: 1000, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	in := make([]compare.DatasetPairs, 0, len(datasets))
	for _, ds := range datasets {
		pairs, err := compare.Pairs(ds.ScoresA, ds.ScoresB)
		if err != nil {
			return MultiDatasetComparison{}, fmt.Errorf("varbench: dataset %s: %w", ds.Name, err)
		}
		in = append(in, compare.DatasetPairs{Name: ds.Name, Pairs: pairs})
	}
	res, err := compare.AcrossDatasets(in, o.gamma, 0.05, xrand.New(o.seed))
	if err != nil {
		return MultiDatasetComparison{}, err
	}
	out := MultiDatasetComparison{
		AllMeaningful: res.AllMeaningful,
		WilcoxonP:     res.WilcoxonP,
	}
	for i, d := range res.PerDataset {
		c := Comparison{
			MeanA:        stats.Mean(datasets[i].ScoresA),
			MeanB:        stats.Mean(datasets[i].ScoresB),
			PAB:          d.Result.PAB,
			CILo:         d.Result.CI.Lo,
			CIHi:         d.Result.CI.Hi,
			Gamma:        d.AdjustedGamma,
			RecommendedN: stats.NoetherSampleSize(d.AdjustedGamma, 0.05, 0.05),
			N:            len(datasets[i].ScoresA),
		}
		switch d.Result.Decision {
		case compare.SignificantAndMeaningful:
			c.Conclusion = SignificantAndMeaningful
		case compare.SignificantNotMeaningful:
			c.Conclusion = SignificantNotMeaningful
		default:
			c.Conclusion = NotSignificant
		}
		out.PerDataset = append(out.PerDataset, c)
		out.Names = append(out.Names, d.Dataset)
	}
	return out, nil
}

// VarianceSummary describes the spread of repeated benchmark measurements.
type VarianceSummary struct {
	N      int
	Mean   float64
	Std    float64
	StdErr float64
	// NormalP is the Shapiro-Wilk p-value (NaN when n outside [3,5000]):
	// small values warn that normal-theory intervals are unreliable.
	NormalP float64
}

// Summarize computes the variance summary of repeated measurements.
func Summarize(scores []float64) VarianceSummary {
	s := VarianceSummary{
		N:      len(scores),
		Mean:   stats.Mean(scores),
		Std:    stats.Std(scores),
		StdErr: stats.StdErr(scores),
	}
	if _, p, err := stats.ShapiroWilk(scores); err == nil {
		s.NormalP = p
	} else {
		s.NormalP = math.NaN()
	}
	return s
}
