// Package varbench is a toolkit for variance-aware machine-learning
// benchmarks, implementing the recommendations of Bouthillier et al.,
// "Accounting for Variance in Machine Learning Benchmarks" (MLSys 2021).
//
// The public surface is the Experiment type: a declarative spec of a
// benchmark comparison that owns collection, statistics and reporting end
// to end.
//
//	exp := varbench.Experiment{
//		A: runCandidate,   // func(seed uint64) (float64, error)
//		B: runBaseline,
//		Parallelism: 8,    // collection fans out across a worker pool
//	}
//	res, err := exp.Run(ctx)
//	...
//	res.Render(os.Stdout, varbench.TextRenderer{})
//
// Run executes the paper's protocol:
//
//  1. It randomizes every source of variation (data split, initialization,
//     data order, dropout, augmentation, HPO — see Source) on every run,
//     pairing the two algorithms on shared trials so that shared noise
//     cancels (Appendix C.2). Restrict Sources to probe individual
//     variances, or use Experiment.Collect for single-pipeline studies.
//  2. It collects in parallel batches with deterministic per-trial seeds:
//     the result is bit-identical at any Parallelism, and collection stops
//     early as soon as the bootstrap CI clears γ, A provably cannot win,
//     or Noether's recommended sample size is reached.
//  3. It concludes with the probability of outperforming P(A>B) against
//     the meaningfulness threshold γ — the three-zone decision of
//     Appendix C.6 — and renders as text, JSON or CSV (Renderer).
//
// Multi-dataset comparisons (Section 6) use the Datasets field; pre-collected
// scores go through Analyze / AnalyzeDatasets, which the `varbench compare`
// subcommand exposes on the command line.
//
// The internal packages contain the complete reproduction of the paper's
// experiments: five synthetic case studies, the ideal and biased estimators,
// the simulation study of decision criteria, and one driver per figure and
// table (run `go run ./cmd/varbench all -quick`).
package varbench

import (
	"context"
	"fmt"
)

// DefaultGamma is the recommended meaningfulness threshold for P(A>B).
const DefaultGamma = 0.75

// CollectPaired measures two pipelines n times each, pairing them on shared
// seeds: run i of both algorithms receives the same seed, so shared sources
// of variation (data splits, ordering) cancel in the comparison, which
// increases statistical power at no cost (Appendix C.2).
//
// Deprecated: use Experiment.Run, which collects in parallel, supports
// cancellation and early stopping, and performs the statistical conclusion
// in the same call. CollectPaired collects serially and keeps its
// historical seed sequence — identical to an Experiment whose Seed equals
// baseSeed (for baseSeed 0, set the seed via WithSeed(0), since the zero
// Seed field means "default").
func CollectPaired(a, b RunFunc, n int, baseSeed uint64) (scoresA, scoresB []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("varbench: n must be ≥ 1")
	}
	// Historical seed sequence: trial seeds drawn from xrand.New(baseSeed)
	// with no defaulting, exactly as makeTrials derives them.
	e := Experiment{Seed: baseSeed, MaxRuns: n}
	runA, err := pickRunner(nil, a, "A")
	if err != nil {
		return nil, nil, err
	}
	runB, err := pickRunner(nil, b, "B")
	if err != nil {
		return nil, nil, err
	}
	scoresA = make([]float64, n)
	scoresB = make([]float64, n)
	// Legacy fail-fast semantics: no deadline, no retries, first error
	// aborts, so the fails slice is never written and may be nil.
	g := &guard{retry: RetryPolicy{}.normalized(), failFast: true, sleep: sleepCtx}
	if err := collectPairs(context.Background(), "", nil, g, runA, runB, e.makeTrials(""), scoresA, scoresB, nil, 1); err != nil {
		return nil, nil, err
	}
	return scoresA, scoresB, nil
}

// Compare applies the paper's recommended test to paired performance
// measures: scoresA[i] and scoresB[i] must come from the same seeds/splits.
// It returns the estimated P(A>B), its confidence interval, and the
// three-zone conclusion.
//
// Deprecated: use Experiment.Run for end-to-end comparisons, or Analyze for
// pre-collected scores (same statistics, renderable Result).
func Compare(scoresA, scoresB []float64, opts ...Option) (Comparison, error) {
	if len(scoresA) != len(scoresB) {
		return Comparison{}, fmt.Errorf("varbench: unpaired lengths %d vs %d",
			len(scoresA), len(scoresB))
	}
	res, err := Analyze(scoresA, scoresB, opts...)
	if err != nil {
		return Comparison{}, err
	}
	return res.Comparison, nil
}

// CompareUnpaired applies the recommended test to measures collected
// without shared seeds: P(A>B) comes from the Mann-Whitney U statistic and
// the bootstrap resamples each sample independently. Prefer paired
// collection when you control both pipelines — pairing increases power
// substantially (Appendix C.2).
//
// Deprecated: use Analyze with WithUnpaired.
func CompareUnpaired(scoresA, scoresB []float64, opts ...Option) (Comparison, error) {
	res, err := Analyze(scoresA, scoresB, append(opts, WithUnpaired())...)
	if err != nil {
		return Comparison{}, err
	}
	return res.Comparison, nil
}

// MultiDatasetComparison aggregates evidence across several datasets
// (Section 6 of the paper).
type MultiDatasetComparison struct {
	// PerDataset holds one Comparison per dataset, evaluated at the
	// Bonferroni-adjusted meaningfulness threshold.
	PerDataset []Comparison
	// Names aligns with PerDataset.
	Names []string
	// AllMeaningful is the Dror et al. (2017) replicability criterion: A
	// beats B significantly and meaningfully on every dataset.
	AllMeaningful bool
	// WilcoxonP is Demšar's (2006) signed-rank p-value over per-dataset
	// mean scores (one-sided; 1 when fewer than 3 datasets).
	WilcoxonP float64
}

// CompareAcrossDatasets runs the recommended test per dataset with a
// multiple-comparison-adjusted threshold and combines the evidence.
//
// Deprecated: use Experiment.Run with Datasets for end-to-end multi-dataset
// comparisons, or AnalyzeDatasets for pre-collected scores.
func CompareAcrossDatasets(datasets []DatasetScores, opts ...Option) (MultiDatasetComparison, error) {
	res, err := AnalyzeDatasets(datasets, opts...)
	if err != nil {
		return MultiDatasetComparison{}, err
	}
	out := MultiDatasetComparison{
		AllMeaningful: res.AllMeaningful,
		WilcoxonP:     res.WilcoxonP,
	}
	for _, d := range res.Datasets {
		out.PerDataset = append(out.PerDataset, d.Comparison)
		out.Names = append(out.Names, d.Name)
	}
	return out, nil
}
