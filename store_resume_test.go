package varbench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"varbench/store"
)

// A cheap, pure, seed-sensitive stand-in for a benchmark pipeline: the
// score depends on the trial's per-source seeds, so any seed drift between
// a cached and a recomputed trial changes the report.
func storeTestScore(t Trial, offset float64) float64 {
	return offset +
		float64(t.SourceSeed(VarInit)%1009)/1009 +
		float64(t.SourceSeed(VarOrder)%997)/99700
}

// countingPipeline wraps the test pipeline with an invocation counter and,
// optionally, a cancellation trigger: the context is canceled as soon as
// the pipeline has been entered cancelAt times, simulating SIGINT landing
// mid-collection (the trial itself completes — started runs finish and are
// recorded).
func countingPipeline(calls *atomic.Int64, offset float64, cancelAt int64, cancel context.CancelFunc) TrialFunc {
	return func(t Trial) (float64, error) {
		if n := calls.Add(1); cancel != nil && n == cancelAt {
			cancel()
		}
		return storeTestScore(t, offset), nil
	}
}

// TestVarianceStudyStoreResume is the acceptance criterion: a study
// interrupted at an arbitrary point and re-run with the same Store produces
// a byte-identical VarianceText report to an uninterrupted run, at
// Parallelism 1 and 4, with the resumed run invoking the pipeline only for
// the missing cells.
func TestVarianceStudyStoreResume(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			study := func(p TrialFunc, st store.Backend) VarianceStudy {
				return VarianceStudy{
					Pipeline:     p,
					Sources:      []Source{VarInit, VarOrder},
					K:            3,
					Realizations: 2,
					Seed:         11,
					Parallelism:  par,
					Store:        st,
					PipelineID:   "store-resume-test",
				}
			}
			render := func(rep *VarianceReport) string {
				var buf bytes.Buffer
				if err := rep.Render(&buf, VarianceTextRenderer{Curves: true}); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			const total = 3 * 2 * 3 // (2 sources + joint) × realizations × K

			// Golden: uninterrupted, storeless.
			var goldenCalls atomic.Int64
			rep, err := study(countingPipeline(&goldenCalls, 0.2, 0, nil), nil).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			golden := render(rep)
			if goldenCalls.Load() != total {
				t.Fatalf("golden run made %d calls, want %d", goldenCalls.Load(), total)
			}

			// Interrupted: cancel fires from inside the 5th pipeline call.
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			_, err = study(countingPipeline(&calls, 0.2, 5, cancel), st).Run(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: want context.Canceled, got %v", err)
			}
			st.Close() // the "process died" boundary

			// Resume: only the cells missing from the store may run.
			st2, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			recorded := st2.Len()
			if recorded < 5 {
				t.Fatalf("interrupted run recorded %d trials, want ≥ 5 (completed calls are durable)", recorded)
			}
			if recorded >= total {
				t.Fatalf("interrupted run recorded %d trials, want < %d (it was canceled)", recorded, total)
			}
			var resumeCalls atomic.Int64
			rep2, err := study(countingPipeline(&resumeCalls, 0.2, 0, nil), st2).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := render(rep2); got != golden {
				t.Errorf("resumed report differs from uninterrupted golden:\n%s\n--- golden ---\n%s", got, golden)
			}
			if got, want := resumeCalls.Load(), int64(total-recorded); got != want {
				t.Errorf("resumed run made %d pipeline calls, want %d (total %d - %d cached)",
					got, want, total, recorded)
			}

			// Third run: everything cached, zero pipeline invocations.
			var thirdCalls atomic.Int64
			rep3, err := study(countingPipeline(&thirdCalls, 0.2, 0, nil), st2).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if thirdCalls.Load() != 0 {
				t.Errorf("fully cached run made %d pipeline calls, want 0", thirdCalls.Load())
			}
			if got := render(rep3); got != golden {
				t.Errorf("fully cached report differs from golden")
			}
		})
	}
}

// TestExperimentRunStoreResume: the paired-collection counterpart — an
// interrupted Experiment.Run resumes from the store to a byte-identical
// report, recomputing only missing (trial, side) cells.
func TestExperimentRunStoreResume(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			const maxRuns = 12
			exp := func(a, b TrialFunc, st store.Backend) Experiment {
				return Experiment{
					ATrial:      a,
					BTrial:      b,
					Seed:        5,
					MaxRuns:     maxRuns,
					BatchSize:   4,
					EarlyStop:   EarlyStopOff,
					Bootstrap:   50,
					Parallelism: par,
					Store:       st,
					PipelineID:  "exp-resume-test",
				}
			}
			render := func(res *Result) string {
				var buf bytes.Buffer
				if err := res.Render(&buf, TextRenderer{Scores: true}); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}

			var goldenCalls atomic.Int64
			gA := countingPipeline(&goldenCalls, 0.3, 0, nil)
			gB := countingPipeline(&goldenCalls, 0.1, 0, nil)
			res, err := exp(gA, gB, nil).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			golden := render(res)
			if goldenCalls.Load() != 2*maxRuns {
				t.Fatalf("golden run made %d calls, want %d", goldenCalls.Load(), 2*maxRuns)
			}

			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			iA := countingPipeline(&calls, 0.3, 7, cancel)
			iB := countingPipeline(&calls, 0.1, 7, cancel)
			if _, err = exp(iA, iB, st).Run(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: want context.Canceled, got %v", err)
			}
			st.Close()

			st2, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			// Count trial cells only: the interrupted run also persists
			// analysis snapshots under "analysis/" keys, which are not
			// pipeline calls.
			recorded := st2.CountPrefix("trial/")
			if recorded < 7 || recorded >= 2*maxRuns {
				t.Fatalf("interrupted run recorded %d cells, want in [7, %d)", recorded, 2*maxRuns)
			}
			var resumeCalls atomic.Int64
			rA := countingPipeline(&resumeCalls, 0.3, 0, nil)
			rB := countingPipeline(&resumeCalls, 0.1, 0, nil)
			res2, err := exp(rA, rB, st2).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := render(res2); got != golden {
				t.Errorf("resumed report differs from golden:\n%s\n--- golden ---\n%s", got, golden)
			}
			if got, want := resumeCalls.Load(), int64(2*maxRuns-recorded); got != want {
				t.Errorf("resumed run made %d calls, want %d", got, want)
			}
		})
	}
}

// TestVarianceStudyCrossStudySharing: a second study probing a subset of
// the first study's sources — at the same Seed, K and Realizations — is
// served entirely from the shared store. Its single-source row has the same
// varied set and realization roots as the first study's row for that
// source, and so does its joint row (joint over one source ≡ that source's
// row), so not one pipeline call is needed.
func TestVarianceStudyCrossStudySharing(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := VarianceStudy{
		K:            3,
		Realizations: 2,
		Seed:         23,
		Parallelism:  2,
		Store:        st,
		PipelineID:   "shared",
	}

	var calls1 atomic.Int64
	s1 := base
	s1.Pipeline = countingPipeline(&calls1, 0, 0, nil)
	s1.Sources = []Source{VarInit, VarOrder}
	rep1, err := s1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls1.Load() != 3*2*3 {
		t.Fatalf("first study made %d calls, want 18", calls1.Load())
	}

	var calls2 atomic.Int64
	s2 := base
	s2.Pipeline = countingPipeline(&calls2, 0, 0, nil)
	s2.Sources = []Source{VarInit}
	rep2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Errorf("subset study made %d pipeline calls, want 0 (every cell shared)", calls2.Load())
	}
	if rep1.Sources[0].Std != rep2.Sources[0].Std || rep1.Sources[0].Mean != rep2.Sources[0].Mean {
		t.Errorf("shared source row diverged: %+v vs %+v", rep1.Sources[0], rep2.Sources[0])
	}

	// Source order must not matter: the fingerprint canonicalizes the
	// varied set, so {order, init} is the same study as {init, order}.
	var calls3 atomic.Int64
	s3 := base
	s3.Pipeline = countingPipeline(&calls3, 0, 0, nil)
	s3.Sources = []Source{VarOrder, VarInit}
	if _, err := s3.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls3.Load() != 0 {
		t.Errorf("reordered-sources study made %d pipeline calls, want 0", calls3.Load())
	}

	// A superset study reuses the recorded per-source rows but must
	// collect its new source row and its joint row fresh: the joint
	// varied set {init, order, dropout} was never recorded, and serving a
	// different combination would be wrong, not thrifty.
	var calls4 atomic.Int64
	s4 := base
	s4.Pipeline = countingPipeline(&calls4, 0, 0, nil)
	s4.Sources = []Source{VarInit, VarOrder, VarDropout}
	if _, err := s4.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * 2 * 3); calls4.Load() != want { // 2 fresh rows × R × K
		t.Errorf("superset study made %d pipeline calls, want %d (dropout + joint rows only)",
			calls4.Load(), want)
	}
}

// TestStoreFingerprintInvalidation: records are only served to the spec
// that wrote them — a different PipelineID or varied-source set recomputes
// from scratch instead of silently reusing stale scores.
func TestStoreFingerprintInvalidation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	collect := func(id string, sources []Source, calls *atomic.Int64) []float64 {
		t.Helper()
		e := Experiment{
			ATrial:     countingPipeline(calls, 0, 0, nil),
			Sources:    sources,
			Seed:       9,
			MaxRuns:    4,
			Store:      st,
			PipelineID: id,
		}
		out, err := e.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	var c1, c2, c3, c4 atomic.Int64
	first := collect("pipeline-v1", []Source{VarInit}, &c1)
	collect("pipeline-v2", []Source{VarInit}, &c2)
	collect("pipeline-v1", []Source{VarInit, VarOrder}, &c3)
	again := collect("pipeline-v1", []Source{VarInit}, &c4)
	if c1.Load() != 4 || c2.Load() != 4 || c3.Load() != 4 {
		t.Errorf("changed specs must recompute: calls = %d, %d, %d (want 4 each)",
			c1.Load(), c2.Load(), c3.Load())
	}
	if c4.Load() != 0 {
		t.Errorf("unchanged spec must be fully cached, made %d calls", c4.Load())
	}
	for i := range first {
		if first[i] != again[i] {
			t.Errorf("cached score %d = %v, want %v", i, again[i], first[i])
		}
	}
}

// TestMultiDatasetStoreResume: per-dataset keys keep concurrent dataset
// collections from colliding in the store, and a second run is fully
// cached with an identical report.
func TestMultiDatasetStoreResume(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	build := func(calls *atomic.Int64) Experiment {
		return Experiment{
			Datasets: []Dataset{
				{Name: "mnist", ATrial: countingPipeline(calls, 0.3, 0, nil), BTrial: countingPipeline(calls, 0.1, 0, nil)},
				{Name: "cifar", ATrial: countingPipeline(calls, 0.4, 0, nil), BTrial: countingPipeline(calls, 0.2, 0, nil)},
			},
			Seed:       13,
			MaxRuns:    6,
			EarlyStop:  EarlyStopOff,
			Bootstrap:  50,
			Store:      st,
			PipelineID: "multi",
		}
	}
	render := func(r *Result) string {
		var buf bytes.Buffer
		if err := r.Render(&buf, TextRenderer{Scores: true}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	var calls1, calls2 atomic.Int64
	res1, err := build(&calls1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls1.Load() != 2*2*6 {
		t.Fatalf("first run made %d calls, want 24", calls1.Load())
	}
	res2, err := build(&calls2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != 0 {
		t.Errorf("second run made %d calls, want 0", calls2.Load())
	}
	if render(res1) != render(res2) {
		t.Errorf("cached multi-dataset report differs:\n%s\n---\n%s", render(res1), render(res2))
	}
}
