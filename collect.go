package varbench

import (
	"context"
	"fmt"
	"sync"

	"varbench/store"
)

// The collection engine: a bounded worker pool executing one batch of
// trials at a time, writing each score to its trial's slot. Batches are
// streamed from a lazy trialStream whose seeds depend only on (Seed,
// dataset, trial index), fixed before any trial is dispatched, so workers
// never share mutable state beyond disjoint slice elements and the output
// is identical at any parallelism. Multi-dataset experiments run one such
// pool per dataset concurrently. Cancellation is observed between runs; a
// run already started is allowed to finish.
//
// When a trial store is attached, the engine is cache-first: each (trial,
// side) cell is looked up before the pipeline runs, and every freshly
// measured score is appended to the store as soon as it exists — not at the
// end of the run — so an interrupted collection leaves every completed
// trial durable. Because a cell's score is a pure function of its identity,
// serving it from the store is bit-identical to recomputing it, and cache
// hits cannot perturb parallelism-independence.

// A trialCache adapts a store.Backend to one dataset's collection: it holds
// the spec fingerprint and key parts shared by all of the dataset's trials.
// A nil *trialCache is a valid always-miss cache.
type trialCache struct {
	store   store.Backend
	fp      string
	seed    uint64
	dataset string
}

// get returns the cached score of one (trial, side) cell.
func (c *trialCache) get(index int, side string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	return c.store.Get(store.TrialKey(c.seed, c.dataset, index, side), c.fp)
}

// put durably records one freshly measured score.
func (c *trialCache) put(index int, side string, score float64) error {
	if c == nil {
		return nil
	}
	if err := c.store.Put(store.TrialKey(c.seed, c.dataset, index, side), c.fp, score); err != nil {
		return fmt.Errorf("varbench: trial store: %w", err)
	}
	return nil
}

// lookup serves one cell cache-first: on a miss it runs the pipeline and
// records the score before returning it.
func (c *trialCache) lookup(t Trial, side string, run TrialFunc, label string) (float64, error) {
	if v, ok := c.get(t.Index, side); ok {
		return v, nil
	}
	v, err := run(t)
	if err != nil {
		return 0, fmt.Errorf("varbench: %salgorithm %s run %d: %w", label, side, t.Index, err)
	}
	return v, c.put(t.Index, side, v)
}

// collectPairs measures one batch of paired trials: trial i feeds both
// pipelines, outA[i] and outB[i] receive the scores. label names the
// dataset in errors ("" for single-dataset experiments).
func collectPairs(ctx context.Context, label string, cache *trialCache, runA, runB TrialFunc, trials []Trial, outA, outB []float64, workers int) error {
	return collectWith(ctx, trials, workers, func(i int) error {
		t := trials[i]
		a, err := cache.lookup(t, "A", runA, label)
		if err != nil {
			return err
		}
		b, err := cache.lookup(t, "B", runB, label)
		if err != nil {
			return err
		}
		outA[i], outB[i] = a, b
		return nil
	})
}

// collectRuns measures a single pipeline once per trial. Stored cells use
// side "A", so a study's single-pipeline measurements and an experiment's
// A-side trials address the same cache cells.
func collectRuns(ctx context.Context, cache *trialCache, run TrialFunc, trials []Trial, out []float64, workers int) error {
	return collectWith(ctx, trials, workers, func(i int) error {
		t := trials[i]
		v, ok := cache.get(t.Index, "A")
		if !ok {
			var err error
			v, err = run(t)
			if err != nil {
				return fmt.Errorf("varbench: run %d: %w", t.Index, err)
			}
			if err := cache.put(t.Index, "A", v); err != nil {
				return err
			}
		}
		out[i] = v
		return nil
	})
}

// collectWith executes do(i) for every trial index across a worker pool,
// stopping at the first error or context cancellation.
func collectWith(ctx context.Context, trials []Trial, workers int, do func(i int) error) error {
	return collectN(ctx, len(trials), workers, func(_ context.Context, i int) error { return do(i) })
}

// collectN executes do(ctx, i) for i in [0, n) across a worker pool,
// stopping at the first error or context cancellation. It is the engine
// behind both trial collection and the (source × realization) fan-out of
// VarianceStudy.Run: every job writes only to its own pre-assigned slot, so
// any worker count produces identical results. The ctx handed to do is
// canceled as soon as any job fails, so long-running jobs (a whole
// K-measure variance cell, not just one trial) can stop between their own
// steps instead of running to completion; the first failure always wins the
// reported error, never a sibling's cancellation.
func collectN(ctx context.Context, n, workers int, do func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("varbench: collection canceled: %w", err)
			}
			if err := do(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	// firstErr is assigned before cancel fires (same critical section), so
	// cancellation errors from in-flight siblings never mask the root cause.
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := do(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("varbench: collection canceled: %w", err)
	}
	return nil
}
