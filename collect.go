package varbench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"varbench/store"
)

// The collection engine: a bounded worker pool executing one batch of
// trials at a time, writing each score to its trial's slot. Batches are
// streamed from a lazy trialStream whose seeds depend only on (Seed,
// dataset, trial index), fixed before any trial is dispatched, so workers
// never share mutable state beyond disjoint slice elements and the output
// is identical at any parallelism. Multi-dataset experiments run one such
// pool per dataset concurrently. Cancellation is observed between runs; a
// run already started is allowed to finish.
//
// When a trial store is attached, the engine is cache-first: each (trial,
// side) cell is looked up before the pipeline runs, and every freshly
// measured score is appended to the store as soon as it exists — not at the
// end of the run — so an interrupted collection leaves every completed
// trial durable. Because a cell's score is a pure function of its identity,
// serving it from the store is bit-identical to recomputing it, and cache
// hits cannot perturb parallelism-independence.
//
// The resilience layer wraps each cell's execution: panic recovery converts
// a panicking TrialFunc into an error, a per-trial deadline bounds each
// attempt, and a RetryPolicy re-runs retryable failures on a deterministic
// seeded backoff schedule. In quarantine mode (FailFast false) a cell that
// exhausts its attempts is recorded as a TrialFailure — durably, under a
// store failure/... key with its attempt history — and collection continues;
// in fail-fast mode (the default without resilience knobs) the first failure
// aborts the run exactly as it always did.

// A trialCache adapts a store.Backend to one dataset's collection: it holds
// the spec fingerprint and key parts shared by all of the dataset's trials.
// A nil *trialCache is a valid always-miss cache.
type trialCache struct {
	store   store.Backend
	fp      string
	seed    uint64
	dataset string
}

// get returns the cached score of one (trial, side) cell.
func (c *trialCache) get(index int, side string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	return c.store.Get(store.TrialKey(c.seed, c.dataset, index, side), c.fp)
}

// put durably records one freshly measured score.
func (c *trialCache) put(index int, side string, score float64) error {
	if c == nil {
		return nil
	}
	if err := c.store.Put(store.TrialKey(c.seed, c.dataset, index, side), c.fp, score); err != nil {
		return fmt.Errorf("varbench: trial store: %w", err)
	}
	return nil
}

// putFailure durably records a quarantined cell's attempt history under the
// failure/... key family. Best-effort: a store that cannot even record the
// failure does not escalate a quarantined trial into an aborted run — the
// in-memory TrialFailure still reaches the report.
func (c *trialCache) putFailure(index int, side string, rec failureRecord) {
	if c == nil {
		return
	}
	_ = c.store.PutJSON(store.FailureKey(c.seed, c.dataset, index, side), c.fp, rec)
}

// A guard bundles the experiment's per-trial fault handling: panic
// isolation, the per-trial deadline, the retry policy and the quarantine
// switch. sleep is the backoff pause, injectable in tests.
type guard struct {
	timeout  time.Duration
	retry    RetryPolicy // normalized: MaxAttempts ≥ 1
	failFast bool
	sleep    func(context.Context, time.Duration) error
}

// runRecovered executes one pipeline invocation, converting a panic into an
// ErrTrialPanic error so a panicking TrialFunc quarantines one trial instead
// of crashing the process. The panic value (not a stack trace, which would
// embed goroutine IDs and break deterministic failure reports) is preserved
// in the message.
func runRecovered(run TrialFunc, t Trial) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			v = 0
			err = fmt.Errorf("%w: %v", ErrTrialPanic, r)
		}
	}()
	return run(t)
}

// attempt executes one pipeline invocation under the guard's deadline. With
// no deadline the trial runs inline. With one, it runs in a goroutine and
// the attempt fails with ErrTrialTimeout when the deadline passes first; the
// runner goroutine is abandoned (its buffered send cannot block) and its
// eventual result discarded — a TrialFunc that hangs forever leaks that
// goroutine, which is the price of bounding a pipeline that ignores
// deadlines.
func (g *guard) attempt(ctx context.Context, run TrialFunc, t Trial) (float64, error) {
	if g.timeout <= 0 {
		return runRecovered(run, t)
	}
	type result struct {
		v   float64
		err error
	}
	ch := make(chan result, 1)
	//lint:allow goroline(one-shot send into a buffered channel never blocks; the goroutine exits as soon as the trial returns, and is deliberately abandoned when the deadline or cancellation wins the select)
	go func() {
		v, err := runRecovered(run, t)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		return 0, fmt.Errorf("%w after %v", ErrTrialTimeout, g.timeout)
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// isCancellation reports whether err is context-cancellation shaped —
// the pool shutting down rather than a trial fault.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// resolve serves one (trial, side) cell under the full resilience stack:
// cache-first, then up to MaxAttempts guarded pipeline runs (each followed
// by the durable store write, which shares the attempt budget — a flaky
// store is a retryable fault like a flaky trial). On terminal failure it
// either returns an error (fail-fast mode, or cancellation, which is never
// quarantined) or a TrialFailure recorded durably with its attempt history.
func (c *trialCache) resolve(ctx context.Context, g *guard, t Trial, side string, run TrialFunc, label string) (float64, *TrialFailure, error) {
	if v, ok := c.get(t.Index, side); ok {
		return v, nil, nil
	}
	var history []attemptRecord
	for attempt := 1; ; attempt++ {
		v, err := g.attempt(ctx, run, t)
		if err == nil {
			err = c.put(t.Index, side, v)
		}
		if err == nil {
			return v, nil, nil
		}
		if isCancellation(err) {
			return 0, nil, fmt.Errorf("varbench: %salgorithm %s run %d: collection canceled: %w", label, side, t.Index, err)
		}
		rec := attemptRecord{Attempt: attempt, Error: err.Error()}
		if attempt < g.retry.MaxAttempts && g.retry.retryable(err) {
			pause := g.retry.Backoff(t.Seed, attempt)
			rec.BackoffNS = int64(pause)
			history = append(history, rec)
			if serr := g.sleep(ctx, pause); serr != nil {
				return 0, nil, fmt.Errorf("varbench: %salgorithm %s run %d: collection canceled during retry backoff: %w", label, side, t.Index, serr)
			}
			continue
		}
		history = append(history, rec)
		if g.failFast {
			return 0, nil, wrapTrialErr(label, side, t.Index, err)
		}
		kind := failureKindOf(err)
		c.putFailure(t.Index, side, failureRecord{Kind: kind, Error: err.Error(), Attempts: history})
		return 0, &TrialFailure{
			Index:    t.Index,
			Side:     side,
			Kind:     kind,
			Err:      err.Error(),
			Attempts: attempt,
		}, nil
	}
}

// wrapTrialErr attaches the trial's identity to its terminal error. Errors
// already classified by a sentinel (timeout, panic) or originating in the
// store keep their chain; anything else — a plain pipeline error — gains
// the ErrTrialFailed sentinel so callers can classify without parsing.
func wrapTrialErr(label, side string, index int, err error) error {
	if errors.Is(err, ErrTrialTimeout) || errors.Is(err, ErrTrialPanic) || errors.Is(err, ErrTrialFailed) {
		return fmt.Errorf("varbench: %salgorithm %s run %d: %w", label, side, index, err)
	}
	return fmt.Errorf("varbench: %salgorithm %s run %d: %w: %w", label, side, index, ErrTrialFailed, err)
}

// collectPairs measures one batch of paired trials: trial i feeds both
// pipelines, outA[i] and outB[i] receive the scores. label names the
// dataset in errors ("" for single-dataset experiments). In quarantine mode
// a failed side quarantines the whole pair (the other side is skipped —
// half a pair is useless to a paired test) into fails[i]; every slot is
// written only by its own trial, so failure placement is deterministic at
// any parallelism.
func collectPairs(ctx context.Context, label string, cache *trialCache, g *guard, runA, runB TrialFunc, trials []Trial, outA, outB []float64, fails []*TrialFailure, workers int) error {
	return collectN(ctx, len(trials), workers, func(cctx context.Context, i int) error {
		t := trials[i]
		a, fa, err := cache.resolve(cctx, g, t, "A", runA, label)
		if err != nil {
			return err
		}
		if fa != nil {
			fails[i] = fa
			return nil
		}
		b, fb, err := cache.resolve(cctx, g, t, "B", runB, label)
		if err != nil {
			return err
		}
		if fb != nil {
			fails[i] = fb
			return nil
		}
		outA[i], outB[i] = a, b
		return nil
	})
}

// collectRuns measures a single pipeline once per trial. Stored cells use
// side "A", so a study's single-pipeline measurements and an experiment's
// A-side trials address the same cache cells.
func collectRuns(ctx context.Context, cache *trialCache, g *guard, run TrialFunc, trials []Trial, out []float64, fails []*TrialFailure, workers int) error {
	return collectN(ctx, len(trials), workers, func(cctx context.Context, i int) error {
		t := trials[i]
		v, f, err := cache.resolve(cctx, g, t, "A", run, "")
		if err != nil {
			return err
		}
		if f != nil {
			fails[i] = f
			return nil
		}
		out[i] = v
		return nil
	})
}

// collectN executes do(ctx, i) for i in [0, n) across a worker pool,
// stopping at the first error or context cancellation. It is the engine
// behind both trial collection and the (source × realization) fan-out of
// VarianceStudy.Run: every job writes only to its own pre-assigned slot, so
// any worker count produces identical results. The ctx handed to do is
// canceled as soon as any job fails, so long-running jobs (a whole
// K-measure variance cell, not just one trial) can stop between their own
// steps instead of running to completion. The reported error is the
// lowest-index real failure: cancellation-shaped errors from siblings that
// were cut down by the pool's own cancel never win over the root cause, and
// when several jobs fail simultaneously the one with the smallest index is
// reported, deterministically, regardless of which goroutine lost the race.
func collectN(ctx context.Context, n, workers int, do func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("varbench: collection canceled: %w", err)
			}
			if err := do(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// The lowest-index real failure wins the reported error. A
		// cancellation-shaped error is kept only as a fallback: it is
		// usually a sibling observing our own cancel (or the caller's), and
		// reporting it would mask the root cause — but if no real failure
		// and no canceled context explains the stop, it is still surfaced
		// rather than swallowed.
		errIdx    = -1
		firstErr  error
		cancelIdx = -1
		cancelErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if isCancellation(err) {
			if cancelIdx == -1 || i < cancelIdx {
				cancelIdx, cancelErr = i, err
			}
			return
		}
		if errIdx == -1 {
			cancel()
		}
		if errIdx == -1 || i < errIdx {
			errIdx, firstErr = i, err
		}
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := do(ctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("varbench: collection canceled: %w", err)
	}
	if cancelErr != nil {
		// A job returned a cancellation-shaped error with no cancellation in
		// sight: a pipeline surfacing context.Canceled of its own accord.
		return cancelErr
	}
	return nil
}
