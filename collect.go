package varbench

import (
	"context"
	"fmt"
	"sync"
)

// The collection engine: a bounded worker pool executing one batch of
// trials at a time, writing each score to its trial's slot. Batches are
// streamed from a lazy trialStream whose seeds depend only on (Seed,
// dataset, trial index), fixed before any trial is dispatched, so workers
// never share mutable state beyond disjoint slice elements and the output
// is identical at any parallelism. Multi-dataset experiments run one such
// pool per dataset concurrently. Cancellation is observed between runs; a
// run already started is allowed to finish.

// collectPairs measures one batch of paired trials: trial i feeds both
// pipelines, outA[i] and outB[i] receive the scores. label names the
// dataset in errors ("" for single-dataset experiments).
func collectPairs(ctx context.Context, label string, runA, runB TrialFunc, trials []Trial, outA, outB []float64, workers int) error {
	return collectWith(ctx, trials, workers, func(i int) error {
		t := trials[i]
		a, err := runA(t)
		if err != nil {
			return fmt.Errorf("varbench: %salgorithm A run %d: %w", label, t.Index, err)
		}
		b, err := runB(t)
		if err != nil {
			return fmt.Errorf("varbench: %salgorithm B run %d: %w", label, t.Index, err)
		}
		outA[i], outB[i] = a, b
		return nil
	})
}

// collectRuns measures a single pipeline once per trial.
func collectRuns(ctx context.Context, run TrialFunc, trials []Trial, out []float64, workers int) error {
	return collectWith(ctx, trials, workers, func(i int) error {
		t := trials[i]
		v, err := run(t)
		if err != nil {
			return fmt.Errorf("varbench: run %d: %w", t.Index, err)
		}
		out[i] = v
		return nil
	})
}

// collectWith executes do(i) for every trial index across a worker pool,
// stopping at the first error or context cancellation.
func collectWith(ctx context.Context, trials []Trial, workers int, do func(i int) error) error {
	return collectN(ctx, len(trials), workers, func(_ context.Context, i int) error { return do(i) })
}

// collectN executes do(ctx, i) for i in [0, n) across a worker pool,
// stopping at the first error or context cancellation. It is the engine
// behind both trial collection and the (source × realization) fan-out of
// VarianceStudy.Run: every job writes only to its own pre-assigned slot, so
// any worker count produces identical results. The ctx handed to do is
// canceled as soon as any job fails, so long-running jobs (a whole
// K-measure variance cell, not just one trial) can stop between their own
// steps instead of running to completion; the first failure always wins the
// reported error, never a sibling's cancellation.
func collectN(ctx context.Context, n, workers int, do func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("varbench: collection canceled: %w", err)
			}
			if err := do(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	// firstErr is assigned before cancel fires (same critical section), so
	// cancellation errors from in-flight siblings never mask the root cause.
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := do(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("varbench: collection canceled: %w", err)
	}
	return nil
}
